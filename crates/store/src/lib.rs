//! Disk-backed circuit database.
//!
//! Exact synthesis is expensive per call but its results are small,
//! canonical and eternally reusable, so `qsyn` persists them: one
//! [`Store`] is an **append-only record log** plus an in-memory index
//! keyed by the FNV-1a digest of the *canonical* specification (the
//! output-permutation class representative computed by
//! `qsyn_portfolio::cache::canonicalize`). Each [`StoredCircuit`] record
//! carries the canonical truth table, the minimal circuit (RevLib `.real`
//! text), its gate count, quantum cost, exact-or-lower-bound solution
//! count and the output permutation under which the circuit realizes the
//! canonical spec — everything a cache hit needs to answer a synthesis
//! request without touching an engine.
//!
//! # Durability
//!
//! Every [`put`](Store::put) appends one length-prefixed, checksummed
//! record in a single `write` call and `fsync`s (`File::sync_data`)
//! before returning, so a record either survives a crash whole or not at
//! all. [`open`](Store::open) replays the log and **truncates the torn
//! tail**: the first record whose length prefix, checksum or payload does
//! not decode marks the end of the valid log, the file is cut back to the
//! last good byte, and the lost record's job simply re-synthesizes. This
//! is the same kill-at-any-byte contract the batch journal established
//! (PR 5) — the store adds checksums and physical truncation because its
//! records, unlike journal rows, are served back to users.
//!
//! # Record format
//!
//! ```text
//! file   := magic record*            magic  = "QSYNSTO1" (8 bytes)
//! record := len payload checksum     len    = u32 LE, payload byte count
//!                                    checksum = u64 LE FNV-1a of payload
//! ```
//!
//! Payload layout (all integers little-endian): digest `u64`, lines
//! `u32`, row count `u32` then `(value, care)` `u32` pairs, depth `u32`,
//! quantum cost `u64`, solution count `u128`, exact-count flag `u8`,
//! permutation length `u32` then entries `u32`, then length-prefixed
//! UTF-8 name and `.real` circuit text.
//!
//! # Collisions
//!
//! The 64-bit digest is an index key, not an identity: every record
//! stores its full canonical truth table, and both [`get`](Store::get)
//! and [`put`](Store::put) compare tables on a digest match. Two distinct
//! functions landing on one digest is surfaced as
//! [`StoreError::DigestCollision`] — never a silently wrong circuit.
//!
//! # Fault injection
//!
//! With the `faults` feature, [`put`](Store::put) polls the
//! `store.append` site **before any byte is written**; an injected fault
//! surfaces as the retryable [`StoreError::Injected`] with the log
//! untouched, which `cargo xtask chaos` exercises per seed.

#![warn(missing_docs)]

use qsyn_revlogic::{cost, real, Spec, SpecRow};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// First bytes of every store file; the trailing digit versions the
/// record layout.
pub const MAGIC: &[u8; 8] = b"QSYNSTO1";

/// Records larger than this are rejected at decode time; a length prefix
/// beyond it is treated as torn-tail garbage, not an allocation request.
const MAX_RECORD_BYTES: u32 = 1 << 24;

/// 64-bit FNV-1a over `bytes`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The store key of a specification: FNV-1a over its line count and
/// `(value, care)` rows. Callers must pass the **canonical** spec (the
/// output-permutation class representative) so equivalent requests share
/// one record.
pub fn spec_digest(spec: &Spec) -> u64 {
    let mut bytes = Vec::with_capacity(4 + spec.num_rows() * 8);
    bytes.extend_from_slice(&spec.lines().to_le_bytes());
    for row in spec.rows() {
        bytes.extend_from_slice(&row.value.to_le_bytes());
        bytes.extend_from_slice(&row.care.to_le_bytes());
    }
    fnv1a(&bytes)
}

/// One persisted synthesis result; see the module docs for the on-disk
/// layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoredCircuit {
    /// [`spec_digest`] of the canonical spec — the index key.
    pub digest: u64,
    /// Informational name (benchmark name or file stem of the first
    /// request that synthesized the class).
    pub name: String,
    /// Line count of the canonical spec and the circuit.
    pub lines: u32,
    /// `(value, care)` rows of the canonical spec, in row order.
    pub rows: Vec<(u32, u32)>,
    /// Minimal gate count.
    pub depth: u32,
    /// Quantum cost of the stored circuit.
    pub quantum_cost: u64,
    /// Number of minimal networks (exact or a lower bound, per
    /// [`count_is_exact`](Self::count_is_exact)).
    pub solution_count: u128,
    /// `true` when `solution_count` is exact (BDD model counting);
    /// `false` when it is a first-model lower bound.
    pub count_is_exact: bool,
    /// Output permutation `q`: the stored circuit realizes
    /// `permute_spec(canonical, q)`, i.e. circuit output `q[j]` drives
    /// canonical spec line `j`.
    pub permutation: Vec<u32>,
    /// The minimal circuit, as RevLib `.real` text.
    pub circuit: String,
}

impl StoredCircuit {
    /// Builds a record for `canonical` (digest and rows derived from it).
    #[allow(clippy::too_many_arguments)]
    pub fn for_spec(
        canonical: &Spec,
        name: &str,
        depth: u32,
        quantum_cost: u64,
        solution_count: u128,
        count_is_exact: bool,
        permutation: Vec<u32>,
        circuit: String,
    ) -> StoredCircuit {
        StoredCircuit {
            digest: spec_digest(canonical),
            name: name.to_string(),
            lines: canonical.lines(),
            rows: canonical.rows().iter().map(|r| (r.value, r.care)).collect(),
            depth,
            quantum_cost,
            solution_count,
            count_is_exact,
            permutation,
            circuit,
        }
    }

    /// `true` when this record's truth table equals `spec`'s.
    pub fn matches_spec(&self, spec: &Spec) -> bool {
        self.lines == spec.lines()
            && self.rows.len() == spec.num_rows()
            && self
                .rows
                .iter()
                .zip(spec.rows())
                .all(|(&(v, c), row)| v == row.value && c == row.care)
    }

    /// Reconstructs the canonical spec this record answers.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the stored rows do not form a valid
    /// (realizable) specification.
    pub fn spec(&self) -> Result<Spec, StoreError> {
        let rows = self
            .rows
            .iter()
            .map(|&(value, care)| SpecRow { value, care })
            .collect();
        Spec::new_incomplete(self.lines, rows).map_err(|e| StoreError::Corrupt {
            offset: 0,
            detail: format!("record {:016x}: invalid spec rows: {e}", self.digest),
        })
    }

    /// Rendered `count_display` form (`"N"` exact, `"≥N"` lower bound),
    /// matching `SolutionSet::count_display`.
    pub fn count_display(&self) -> String {
        if self.count_is_exact {
            self.solution_count.to_string()
        } else {
            format!("≥{}", self.solution_count)
        }
    }
}

/// Store failure modes.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem error. Retryable: the log is rolled back
    /// to its last committed record before this is returned.
    Io(std::io::Error),
    /// The log is unusable beyond torn-tail repair (bad magic, or two
    /// committed records disagree about one digest).
    Corrupt {
        /// Byte offset of the offending data (0 when not file-positional).
        offset: u64,
        /// Human-readable description.
        detail: String,
    },
    /// Two distinct truth tables landed on one 64-bit digest.
    DigestCollision {
        /// The shared digest.
        digest: u64,
    },
    /// A seeded fault fired at the `store.append` site before any byte
    /// was written. Retryable by contract (each site fires once per
    /// arming).
    Injected,
}

impl StoreError {
    /// `true` for transient failures a caller should retry (I/O errors
    /// after rollback, injected write faults); `false` for corruption and
    /// collisions, which retrying cannot fix.
    pub fn is_retryable(&self) -> bool {
        matches!(self, StoreError::Io(_) | StoreError::Injected)
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt { offset, detail } => {
                write!(f, "store corrupt at byte {offset}: {detail}")
            }
            StoreError::DigestCollision { digest } => write!(
                f,
                "digest collision on {digest:016x}: two distinct functions share one key"
            ),
            StoreError::Injected => write!(f, "injected store write fault (retryable)"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// Outcome of a [`Store::put`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PutOutcome {
    /// The record was appended and fsync'd.
    Inserted,
    /// An identical-spec record already existed; nothing was written
    /// (results are write-once — both answers are minimal).
    AlreadyPresent,
}

/// Serializes `record` into its payload bytes (no length prefix or
/// checksum). Public so tests can round-trip and corrupt records.
pub fn encode_record(r: &StoredCircuit) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + r.rows.len() * 8 + r.name.len() + r.circuit.len());
    out.extend_from_slice(&r.digest.to_le_bytes());
    out.extend_from_slice(&r.lines.to_le_bytes());
    out.extend_from_slice(&(r.rows.len() as u32).to_le_bytes());
    for &(value, care) in &r.rows {
        out.extend_from_slice(&value.to_le_bytes());
        out.extend_from_slice(&care.to_le_bytes());
    }
    out.extend_from_slice(&r.depth.to_le_bytes());
    out.extend_from_slice(&r.quantum_cost.to_le_bytes());
    out.extend_from_slice(&r.solution_count.to_le_bytes());
    out.push(u8::from(r.count_is_exact));
    out.extend_from_slice(&(r.permutation.len() as u32).to_le_bytes());
    for &p in &r.permutation {
        out.extend_from_slice(&p.to_le_bytes());
    }
    out.extend_from_slice(&(r.name.len() as u32).to_le_bytes());
    out.extend_from_slice(r.name.as_bytes());
    out.extend_from_slice(&(r.circuit.len() as u32).to_le_bytes());
    out.extend_from_slice(r.circuit.as_bytes());
    out
}

/// Cursor-based field readers for [`decode_record`].
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice converts to [u8; 4]")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice converts to [u8; 8]")))
    }

    fn u128(&mut self) -> Option<u128> {
        self.take(16)
            .map(|b| u128::from_le_bytes(b.try_into().expect("16-byte slice converts to [u8; 16]")))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

/// Parses one payload written by [`encode_record`]; `None` on any
/// malformation (truncation, length overrun, invalid UTF-8, trailing
/// garbage).
pub fn decode_record(payload: &[u8]) -> Option<StoredCircuit> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let digest = c.u64()?;
    let lines = c.u32()?;
    let num_rows = c.u32()? as usize;
    // A row table never exceeds 2^lines ≤ 2^32 entries, but a torn length
    // field could claim anything; bound by the payload that actually exists.
    if num_rows > payload.len() / 8 + 1 {
        return None;
    }
    let mut rows = Vec::with_capacity(num_rows);
    for _ in 0..num_rows {
        rows.push((c.u32()?, c.u32()?));
    }
    let depth = c.u32()?;
    let quantum_cost = c.u64()?;
    let solution_count = c.u128()?;
    let count_is_exact = match c.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let perm_len = c.u32()? as usize;
    if perm_len > payload.len() / 4 + 1 {
        return None;
    }
    let mut permutation = Vec::with_capacity(perm_len);
    for _ in 0..perm_len {
        permutation.push(c.u32()?);
    }
    let name = c.string()?;
    let circuit = c.string()?;
    if c.pos != payload.len() {
        return None;
    }
    Some(StoredCircuit {
        digest,
        name,
        lines,
        rows,
        depth,
        quantum_cost,
        solution_count,
        count_is_exact,
        permutation,
        circuit,
    })
}

/// The disk-backed circuit database; see the module docs.
///
/// Not internally synchronized: wrap in a `Mutex` for concurrent access
/// (the serve layer does). Reads after [`open`](Store::open) are pure
/// index lookups; only [`put`](Store::put) touches the file.
#[derive(Debug)]
pub struct Store {
    file: File,
    path: PathBuf,
    index: HashMap<u64, StoredCircuit>,
    /// Insertion order of digests, for deterministic iteration.
    order: Vec<u64>,
    /// Committed end of the log (everything before this offset is valid).
    end: u64,
    /// Bytes dropped by torn-tail repair at open (0 for a clean log).
    truncated: u64,
}

impl Store {
    /// Opens (creating if absent) the store at `path`, replaying the log
    /// into the in-memory index and truncating any torn tail (see the
    /// module docs).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures, [`StoreError::Corrupt`]
    /// when the magic is wrong or two committed records disagree about a
    /// digest.
    pub fn open(path: &Path) -> Result<Store, StoreError> {
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            file.write_all(MAGIC)?;
            file.sync_data()?;
            return Ok(Store {
                file,
                path: path.to_path_buf(),
                index: HashMap::new(),
                order: Vec::new(),
                end: MAGIC.len() as u64,
                truncated: 0,
            });
        }
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(StoreError::Corrupt {
                offset: 0,
                detail: format!("bad magic (want {:?})", String::from_utf8_lossy(MAGIC)),
            });
        }
        let mut index: HashMap<u64, StoredCircuit> = HashMap::new();
        let mut order: Vec<u64> = Vec::new();
        let mut pos = MAGIC.len();
        // Scan records; the first malformed one marks the torn tail.
        let end = loop {
            if pos == bytes.len() {
                break pos;
            }
            let record = read_record_at(&bytes, pos);
            let Some((record, next)) = record else {
                break pos;
            };
            match index.get(&record.digest) {
                Some(existing) if existing.rows != record.rows => {
                    // Two *committed* records disagree: not a torn tail
                    // (the checksum held) but a genuine inconsistency.
                    return Err(StoreError::DigestCollision {
                        digest: record.digest,
                    });
                }
                Some(_) => {
                    // A crash between lookup and append in another process
                    // can duplicate a record; identical content is harmless.
                }
                None => order.push(record.digest),
            }
            index.insert(record.digest, record);
            pos = next;
        };
        let truncated = (bytes.len() - end) as u64;
        if truncated > 0 {
            file.set_len(end as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Store {
            file,
            path: path.to_path_buf(),
            index,
            order,
            end: end as u64,
            truncated,
        })
    }

    /// The record for `canonical`, or `None` when the class has not been
    /// synthesized yet.
    ///
    /// # Errors
    ///
    /// [`StoreError::DigestCollision`] when a record shares the digest
    /// but stores a different truth table.
    pub fn get(&self, canonical: &Spec) -> Result<Option<&StoredCircuit>, StoreError> {
        let digest = spec_digest(canonical);
        match self.index.get(&digest) {
            None => Ok(None),
            Some(r) if r.matches_spec(canonical) => Ok(Some(r)),
            Some(_) => Err(StoreError::DigestCollision { digest }),
        }
    }

    /// Appends `record`, fsync'd, and indexes it. Results are write-once:
    /// an identical-spec record already present is left alone
    /// ([`PutOutcome::AlreadyPresent`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::DigestCollision`] when a different truth table
    /// already owns the digest; [`StoreError::Injected`] when the seeded
    /// `store.append` fault fires (retryable, nothing written);
    /// [`StoreError::Io`] on filesystem failures (the log is rolled back
    /// to its last committed record first, so a failed put never leaves
    /// partial bytes behind).
    ///
    /// This is the append+fsync sink every `concheck` blocking-under-lock
    /// reason chain terminates in (`put → write_all`): callers either
    /// keep the store behind its own leaf-level mutex (the waived
    /// serialization-point pattern) or call it with no other lock held.
    pub fn put(&mut self, record: StoredCircuit) -> Result<PutOutcome, StoreError> {
        if qsyn_faults::hit(qsyn_faults::Site::StoreAppend).is_some() {
            return Err(StoreError::Injected);
        }
        match self.index.get(&record.digest) {
            Some(existing) if existing.rows == record.rows => {
                return Ok(PutOutcome::AlreadyPresent)
            }
            Some(_) => {
                return Err(StoreError::DigestCollision {
                    digest: record.digest,
                })
            }
            None => {}
        }
        let payload = encode_record(&record);
        let mut framed = Vec::with_capacity(payload.len() + 12);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&payload);
        framed.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        // One write call for the whole frame: a crash window tears at most
        // this record, which open() then truncates away.
        let written = self
            .file
            .write_all(&framed)
            .and_then(|()| self.file.sync_data());
        if let Err(e) = written {
            // Roll back any partial bytes so the in-memory view and the
            // log stay consistent; if even that fails the next open()'s
            // torn-tail repair handles it.
            let _ = self.file.set_len(self.end);
            let _ = self.file.seek(SeekFrom::End(0));
            return Err(StoreError::Io(e));
        }
        self.end += framed.len() as u64;
        self.order.push(record.digest);
        self.index.insert(record.digest, record);
        Ok(PutOutcome::Inserted)
    }

    /// Number of stored equivalence classes.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no record is stored.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Committed size of the log in bytes (magic included).
    pub fn file_bytes(&self) -> u64 {
        self.end
    }

    /// Bytes dropped by torn-tail repair when this handle opened the
    /// store (0 for a clean log).
    pub fn truncated_tail_bytes(&self) -> u64 {
        self.truncated
    }

    /// The store's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Every record, in insertion (log) order.
    pub fn records(&self) -> impl Iterator<Item = &StoredCircuit> {
        self.order.iter().filter_map(|d| self.index.get(d))
    }

    /// Deep-verifies every record: the `.real` text parses, the circuit's
    /// line count, gate count and quantum cost match the stored metadata,
    /// and simulating the circuit through the stored permutation
    /// reproduces the canonical truth table on every cared bit.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] naming the first record that fails.
    pub fn verify(&self) -> Result<(), StoreError> {
        for r in self.records() {
            let bad = |detail: String| StoreError::Corrupt { offset: 0, detail };
            let circuit = real::parse_real(&r.circuit)
                .map_err(|e| bad(format!("record {} ({:016x}): {e}", r.name, r.digest)))?;
            if circuit.lines() != r.lines {
                return Err(bad(format!(
                    "record {}: circuit has {} lines, spec {}",
                    r.name,
                    circuit.lines(),
                    r.lines
                )));
            }
            if circuit.len() as u32 != r.depth {
                return Err(bad(format!(
                    "record {}: circuit has {} gates, metadata says {}",
                    r.name,
                    circuit.len(),
                    r.depth
                )));
            }
            if cost::circuit_cost(&circuit) != r.quantum_cost {
                return Err(bad(format!(
                    "record {}: quantum cost {} != stored {}",
                    r.name,
                    cost::circuit_cost(&circuit),
                    r.quantum_cost
                )));
            }
            if r.permutation.len() != r.lines as usize {
                return Err(bad(format!(
                    "record {}: permutation length {} != {} lines",
                    r.name,
                    r.permutation.len(),
                    r.lines
                )));
            }
            let spec = r.spec()?;
            if spec_digest(&spec) != r.digest {
                return Err(bad(format!(
                    "record {}: stored digest {:016x} != digest of stored rows",
                    r.name, r.digest
                )));
            }
            for row in 0..spec.num_rows() as u32 {
                let out = circuit.simulate(row);
                let sr = spec.row(row);
                for (j, &p) in r.permutation.iter().enumerate() {
                    let bit = 1u32 << j;
                    if sr.care & bit != 0 && (out >> p) & 1 != (sr.value >> j) & 1 {
                        return Err(bad(format!(
                            "record {}: circuit does not realize its spec (row {row}, line {j})",
                            r.name
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Reads the record framed at `pos`; `Some((record, next_pos))` when the
/// frame is whole and valid, `None` when it is torn or corrupt.
fn read_record_at(bytes: &[u8], pos: usize) -> Option<(StoredCircuit, usize)> {
    let len_bytes = bytes.get(pos..pos + 4)?;
    let len = u32::from_le_bytes(len_bytes.try_into().expect("4-byte slice")) as usize;
    if len as u32 > MAX_RECORD_BYTES {
        return None;
    }
    let payload = bytes.get(pos + 4..pos + 4 + len)?;
    let checksum_bytes = bytes.get(pos + 4 + len..pos + 12 + len)?;
    let checksum = u64::from_le_bytes(checksum_bytes.try_into().expect("8-byte slice"));
    if fnv1a(payload) != checksum {
        return None;
    }
    let record = decode_record(payload)?;
    Some((record, pos + 12 + len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qsyn_revlogic::Permutation;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("qsyn-store-{tag}-{}.qstore", std::process::id()))
    }

    /// A CNOT record over the x2 ^= x1 spec, with a tweakable name.
    fn cnot_record(name: &str) -> StoredCircuit {
        let spec = Spec::from_permutation(&Permutation::from_map(2, vec![0, 3, 2, 1]));
        StoredCircuit::for_spec(
            &spec,
            name,
            1,
            1,
            1,
            true,
            vec![0, 1],
            ".numvars 2\n.variables x1 x2\n.begin\nt2 x1 x2\n.end\n".to_string(),
        )
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A structurally arbitrary record (not semantically valid — exactly
    /// what serialization must round-trip regardless).
    fn random_record(seed: u64) -> StoredCircuit {
        let mut s = seed;
        let rows = (0..(splitmix(&mut s) % 16))
            .map(|_| (splitmix(&mut s) as u32, splitmix(&mut s) as u32))
            .collect();
        let permutation = (0..(splitmix(&mut s) % 8)).map(|i| i as u32).collect();
        StoredCircuit {
            digest: splitmix(&mut s),
            name: format!("job-{}\"\\‖\n", splitmix(&mut s) % 100),
            lines: (splitmix(&mut s) % 9) as u32,
            rows,
            depth: (splitmix(&mut s) % 40) as u32,
            quantum_cost: splitmix(&mut s),
            solution_count: u128::from(splitmix(&mut s)) << 64 | u128::from(splitmix(&mut s)),
            count_is_exact: splitmix(&mut s) & 1 == 0,
            permutation,
            circuit: format!(".numvars 2\n# {}\n.begin\n.end\n", splitmix(&mut s)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Record serialization round-trips bit-exactly for arbitrary
        /// field contents, including non-ASCII names and wide counts.
        fn record_serialization_round_trips(seed in any::<u64>()) {
            let r = random_record(seed);
            let payload = encode_record(&r);
            prop_assert_eq!(decode_record(&payload), Some(r));
        }

        /// Any strict prefix of a payload fails to decode — a torn record
        /// can never be mistaken for a shorter valid one.
        fn truncated_payloads_never_decode(seed in any::<u64>(), cut_permille in 0u32..1000) {
            let r = random_record(seed);
            let payload = encode_record(&r);
            let cut = payload.len() * cut_permille as usize / 1000;
            prop_assert!(cut < payload.len());
            prop_assert_eq!(decode_record(&payload[..cut]), None);
        }

        /// Kill-at-any-byte: truncating the store file at a random byte
        /// and reopening recovers exactly the records whose frames fully
        /// survive, physically truncates the torn tail, and leaves the
        /// store appendable.
        fn torn_tail_recovery(seed in any::<u64>(), cut_permille in 0u32..1000) {
            let path = temp_path(&format!("torn-{seed}-{cut_permille}"));
            let _ = std::fs::remove_file(&path);
            let mut frame_ends = vec![MAGIC.len() as u64];
            {
                let mut store = Store::open(&path).unwrap();
                for i in 0..3u64 {
                    let mut r = random_record(seed ^ (i.wrapping_mul(0x9e37)));
                    r.digest = i; // distinct digests, no accidental dedup
                    store.put(r).unwrap();
                    frame_ends.push(store.file_bytes());
                }
            }
            let full = std::fs::read(&path).unwrap();
            let cut = MAGIC.len()
                + (full.len() - MAGIC.len()) * cut_permille as usize / 1000;
            std::fs::write(&path, &full[..cut]).unwrap();

            let mut store = Store::open(&path).unwrap();
            let survivors = frame_ends
                .iter()
                .filter(|&&end| end > MAGIC.len() as u64 && end <= cut as u64)
                .count();
            prop_assert_eq!(store.len(), survivors, "cut at byte {}", cut);
            // The torn tail is physically gone: the file now ends at the
            // last whole frame.
            let consistent_end = frame_ends
                .iter()
                .filter(|&&end| end <= cut as u64)
                .max()
                .copied()
                .unwrap();
            prop_assert_eq!(store.file_bytes(), consistent_end);
            prop_assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                consistent_end
            );
            // And the log is appendable: a fresh record lands cleanly and
            // survives another reopen.
            let mut fresh = random_record(!seed);
            fresh.digest = 99;
            store.put(fresh.clone()).unwrap();
            drop(store);
            let store = Store::open(&path).unwrap();
            prop_assert_eq!(store.truncated_tail_bytes(), 0);
            prop_assert_eq!(store.len(), survivors + 1);
            prop_assert_eq!(store.records().last(), Some(&fresh));
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn open_put_get_survives_reopen() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let record = cnot_record("cnot");
        let spec = record.spec().unwrap();
        {
            let mut store = Store::open(&path).unwrap();
            assert!(store.is_empty());
            assert_eq!(store.put(record.clone()).unwrap(), PutOutcome::Inserted);
            assert_eq!(store.get(&spec).unwrap(), Some(&record));
        }
        let store = Store::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.truncated_tail_bytes(), 0);
        assert_eq!(store.get(&spec).unwrap(), Some(&record));
        store.verify().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn results_are_write_once() {
        let path = temp_path("write-once");
        let _ = std::fs::remove_file(&path);
        let mut store = Store::open(&path).unwrap();
        store.put(cnot_record("first")).unwrap();
        let bytes = store.file_bytes();
        // Same class again (even under a different name): nothing written.
        assert_eq!(
            store.put(cnot_record("second")).unwrap(),
            PutOutcome::AlreadyPresent
        );
        assert_eq!(store.file_bytes(), bytes);
        assert_eq!(store.len(), 1);
        assert_eq!(store.records().next().unwrap().name, "first");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn digest_collisions_are_rejected_not_conflated() {
        let path = temp_path("collision");
        let _ = std::fs::remove_file(&path);
        let mut store = Store::open(&path).unwrap();
        let record = cnot_record("cnot");
        store.put(record.clone()).unwrap();
        // A *different* function forced onto the same digest: put refuses.
        let swap = Spec::from_permutation(&Permutation::from_map(2, vec![0, 2, 1, 3]));
        let mut forged = StoredCircuit::for_spec(
            &swap,
            "forged",
            3,
            3,
            1,
            true,
            vec![0, 1],
            record.circuit.clone(),
        );
        forged.digest = record.digest;
        assert!(matches!(
            store.put(forged),
            Err(StoreError::DigestCollision { .. })
        ));
        // And a lookup whose spec disagrees with the stored rows refuses
        // too, instead of serving the wrong circuit. Simulate by editing
        // the indexed record's rows through a crafted log.
        drop(store);
        let mut tampered = record.clone();
        tampered.rows[1].0 ^= 1; // rows no longer match the digest's spec
        let payload = encode_record(&tampered);
        let mut framed = Vec::new();
        framed.extend_from_slice(MAGIC);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&payload);
        framed.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        std::fs::write(&path, framed).unwrap();
        let store = Store::open(&path).unwrap();
        assert!(matches!(
            store.get(&record.spec().unwrap()),
            Err(StoreError::DigestCollision { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn committed_records_disagreeing_fail_open() {
        let path = temp_path("disagree");
        let _ = std::fs::remove_file(&path);
        let a = cnot_record("a");
        let mut b = a.clone();
        b.rows[0].0 ^= 2; // same digest field, different truth table
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        for r in [&a, &b] {
            let payload = encode_record(r);
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&payload);
            bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        }
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            Store::open(&path),
            Err(StoreError::DigestCollision { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_is_corrupt_not_truncated() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTQSYN0rest").unwrap();
        assert!(matches!(
            Store::open(&path),
            Err(StoreError::Corrupt { offset: 0, .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn verify_flags_tampered_records() {
        let path = temp_path("verify");
        let _ = std::fs::remove_file(&path);
        let mut bad = cnot_record("bad");
        bad.depth = 7; // metadata no longer matches the circuit
        let payload = encode_record(&bad);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        let store = Store::open(&path).unwrap();
        let err = store.verify().unwrap_err();
        assert!(err.to_string().contains("gates"), "{err}");
        assert!(!err.is_retryable());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn count_display_matches_solution_set_convention() {
        let mut r = cnot_record("c");
        r.solution_count = 24;
        r.count_is_exact = true;
        assert_eq!(r.count_display(), "24");
        r.count_is_exact = false;
        r.solution_count = 1;
        assert_eq!(r.count_display(), "≥1");
    }
}
