//! # qsyn — Quantified Synthesis of Reversible Logic
//!
//! Facade crate of the `qsyn` workspace, a from-scratch reproduction of
//! *"Quantified Synthesis of Reversible Logic"* (R. Wille, H. M. Le,
//! G. W. Dueck, D. Große — DATE 2008).
//!
//! The workspace crates are re-exported here under short names:
//!
//! * [`bdd`] — ROBDD package with quantification (the CUDD stand-in),
//! * [`sat`] — CDCL SAT solver + Tseitin CNF construction (MiniSat stand-in),
//! * [`qbf`] — QBF solvers: search-based QDPLL and ∀-expansion (skizzo
//!   stand-in),
//! * [`revlogic`] — reversible gates, circuits, quantum costs, benchmark
//!   functions,
//! * [`synth`] — the paper's contribution: exact synthesis engines,
//! * [`portfolio`] — engine racing, batch scheduling across a worker pool,
//!   and the canonical-spec result cache,
//! * [`audit`] — invariant auditors for BDD managers, CNF/QBF formulas and
//!   circuits (run automatically in debug builds and via `qsyn audit`),
//! * [`store`] — crash-safe disk-backed circuit database keyed by
//!   canonical specification digests,
//! * [`serve`] — the long-running synthesis daemon (newline-delimited
//!   JSON over TCP) answering repeats from the store.
//!
//! See `README.md` for a tour and `examples/` for runnable entry points.
//!
//! # Quickstart
//!
//! ```
//! use qsyn::revlogic::{benchmarks, GateLibrary};
//! use qsyn::synth::{synthesize, Engine, SynthesisOptions};
//!
//! // Minimal Toffoli network for the 3-line "3_17" benchmark.
//! let spec = benchmarks::spec_3_17();
//! let result = synthesize(
//!     &spec,
//!     &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
//! )
//! .expect("synthesis succeeds");
//! assert_eq!(result.depth(), 6);
//! ```

#![warn(missing_docs)]

pub use qsyn_audit as audit;
pub use qsyn_bdd as bdd;
pub use qsyn_core as synth;
pub use qsyn_portfolio as portfolio;
pub use qsyn_qbf as qbf;
pub use qsyn_revlogic as revlogic;
pub use qsyn_sat as sat;
pub use qsyn_serve as serve;
pub use qsyn_store as store;

pub mod cli;
