//! Command-line interface for the `qsyn` tool.
//!
//! Subcommands:
//!
//! * `synth <file.spec>` — exact synthesis of a truth-table specification,
//!   emitting a RevLib `.real` circuit,
//! * `bench <name>` — synthesize a built-in benchmark,
//! * `batch <suite|dir|list>` — synthesize many specifications on a worker
//!   pool (the engine portfolio's batch scheduler),
//! * `simulate <file.real> <bits>` — run a circuit on one input,
//! * `cost <file.real>` — gate count and quantum cost,
//! * `check <a.real> <b.real>` — equivalence check with counterexample,
//! * `spec <file.real>` — extract the truth table of a circuit,
//! * `audit [files…] [--self-test]` — run the invariant auditors over
//!   `.real` / `.cnf` / `.qdimacs` files, or over seeded self-test
//!   corruptions,
//! * `list` — list the built-in benchmarks.
//!
//! The argument grammar is deliberately tiny and fully testable; see
//! [`Command::parse`].

use crate::portfolio::cache::SpecCache;
use crate::portfolio::journal::{job_key, read_journal, Fnv1a, JournalRecord, JournalWriter};
use crate::portfolio::race::{race_engines, race_engines_permuted};
use crate::portfolio::scheduler::{run_batch, BatchConfig, JobStatus};
use crate::revlogic::{benchmarks, cost, real, spec_format, GateLibrary, Spec};
use crate::synth::permuted::PermutedSynthesisResult;
use crate::synth::{
    equivalence, permuted, run_with_retry, synthesize, Attempt, CancelToken, Engine, RetryPolicy,
    SynthesisError, SynthesisOptions, SynthesisSession,
};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A parsed command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `synth` / `bench`: run exact synthesis.
    Synth {
        /// Path to a `.spec` file, or a benchmark name for `bench`.
        source: Source,
        /// Synthesis configuration.
        config: SynthConfig,
    },
    /// `batch <suite|dir|list-file>`: synthesize many specifications on a
    /// worker pool.
    Batch {
        /// `suite` (the built-in benchmarks), a directory of `.spec` files,
        /// or a text file listing benchmark names / spec paths.
        target: String,
        /// Worker threads (`--jobs N`).
        jobs: usize,
        /// Disable the canonical-spec result cache (`--no-cache`).
        no_cache: bool,
        /// Append each completed job to this fsync'd JSONL journal
        /// (`--journal FILE`), enabling crash-safe resume.
        journal: Option<String>,
        /// Skip jobs already completed in the journal (`--resume`),
        /// replaying their recorded rows instead of re-running them.
        resume: bool,
        /// Synthesis configuration shared by every job (`--timeout` is
        /// enforced per job).
        config: SynthConfig,
    },
    /// `simulate <file.real> <bits>`.
    Simulate {
        /// Circuit file.
        path: String,
        /// Input assignment, e.g. `1011` (line 1 is the rightmost bit).
        input: String,
    },
    /// `cost <file.real>`.
    Cost {
        /// Circuit file.
        path: String,
    },
    /// `check <a.real> <b.real>`.
    Check {
        /// First circuit.
        a: String,
        /// Second circuit.
        b: String,
    },
    /// `spec <file.real>`.
    SpecOf {
        /// Circuit file.
        path: String,
    },
    /// `audit [files…] [--self-test]`.
    Audit {
        /// Files to audit, dispatched on extension: `.real` circuits,
        /// `.cnf`/`.dimacs` CNF formulas, `.qdimacs` QBF formulas.
        paths: Vec<String>,
        /// Also run the built-in self-test: every auditor family must
        /// accept a clean artifact and reject a seeded corruption.
        self_test: bool,
    },
    /// `list`.
    List,
    /// `help` (also `-h`, `--help`).
    Help,
}

/// Where the specification comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Source {
    /// A `.spec` file path.
    File(String),
    /// A built-in benchmark name.
    Benchmark(String),
}

/// Decision-engine selection (`--engine bdd|qbf|sat|race`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineChoice {
    /// One fixed engine.
    Single(Engine),
    /// Portfolio race: all engines in parallel, first proof wins.
    Race,
}

impl std::fmt::Display for EngineChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineChoice::Single(e) => write!(f, "{e}"),
            EngineChoice::Race => write!(f, "race"),
        }
    }
}

/// Options accepted by `synth` / `bench` / `batch`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynthConfig {
    /// Decision engine (`--engine bdd|qbf|sat|race`).
    pub engine: EngineChoice,
    /// Gate library (`--library mct|mct+mcf|mct+p|all`).
    pub library: String,
    /// `--mixed-polarity`.
    pub mixed_polarity: bool,
    /// `--output-permutation`.
    pub output_permutation: bool,
    /// `--heuristic` — transformation-based synthesis (fast, non-minimal;
    /// completely specified functions only).
    pub heuristic: bool,
    /// `--max-depth N`.
    pub max_depth: u32,
    /// `--timeout SECS`.
    pub timeout: Option<u64>,
    /// `--all` — print every minimal circuit, not just the cheapest.
    pub all: bool,
    /// `--stats` — print BDD manager counters (live/peak nodes, GC runs,
    /// computed-table hit rate) after the run.
    pub stats: bool,
    /// `-o FILE` — write the best circuit to FILE instead of stdout.
    pub output: Option<String>,
    /// `--retries N` — extra attempts for budget-tripped jobs, with
    /// budgets doubling per retry.
    pub retries: u32,
    /// `--ladder e1,e2,…` — engines to degrade through on budget-trip
    /// retries (implies at least one retry per rung when `--retries` is
    /// not given).
    pub ladder: Vec<Engine>,
    /// `--fault-seed N` — arm the deterministic fault-injection plane
    /// (rejected unless the binary was built with `--features faults`).
    pub fault_seed: Option<u64>,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            engine: EngineChoice::Single(Engine::Bdd),
            library: "mct".to_string(),
            mixed_polarity: false,
            output_permutation: false,
            heuristic: false,
            max_depth: 32,
            timeout: None,
            all: false,
            stats: false,
            output: None,
            retries: 0,
            ladder: Vec::new(),
            fault_seed: None,
        }
    }
}

impl SynthConfig {
    /// Resolves the library flag.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown library names.
    pub fn gate_library(&self) -> Result<GateLibrary, String> {
        let base = match self.library.as_str() {
            "mct" => GateLibrary::mct(),
            "mct+mcf" => GateLibrary::mct_mcf(),
            "mct+p" => GateLibrary::mct_peres(),
            "all" | "mct+mcf+p" => GateLibrary::all(),
            other => return Err(format!("unknown library `{other}`")),
        };
        Ok(if self.mixed_polarity {
            base.with_mixed_polarity()
        } else {
            base
        })
    }

    /// Builds the engine options.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown library names.
    pub fn options(&self) -> Result<SynthesisOptions, String> {
        let engine = match self.engine {
            EngineChoice::Single(e) => e,
            // Placeholder: the race spawns one clone per engine and
            // overrides this field on each.
            EngineChoice::Race => Engine::Bdd,
        };
        let mut o =
            SynthesisOptions::new(self.gate_library()?, engine).with_max_depth(self.max_depth);
        if let Some(secs) = self.timeout {
            o = o.with_time_budget(Duration::from_secs(secs));
        }
        Ok(o)
    }

    /// The recovery plan implied by `--retries` / `--ladder`: budget
    /// trips escalate (budgets double per retry) and degrade down the
    /// ladder. `--ladder` without `--retries` grants one retry per rung.
    pub fn retry_policy(&self) -> RetryPolicy {
        let extra = if self.retries == 0 {
            u32::try_from(self.ladder.len()).unwrap_or(u32::MAX)
        } else {
            self.retries
        };
        if extra == 0 {
            RetryPolicy::none()
        } else {
            RetryPolicy::escalating(extra + 1, self.ladder.clone())
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
qsyn — exact synthesis of reversible logic (Wille et al., DATE 2008)

USAGE:
  qsyn synth <file.spec> [OPTIONS]     synthesize a truth-table specification
  qsyn bench <name> [OPTIONS]          synthesize a built-in benchmark
  qsyn batch <suite|dir|list> [OPTIONS]
                                       synthesize many specs on a worker pool
  qsyn simulate <file.real> <bits>     run a circuit on one input
  qsyn cost <file.real>                gate count and quantum cost
  qsyn check <a.real> <b.real>         equivalence check (with counterexample)
  qsyn spec <file.real>                truth table of a circuit
  qsyn audit [files...] [--self-test]  run the invariant auditors over
                                       .real/.cnf/.qdimacs files; --self-test
                                       seeds corruptions and checks every
                                       auditor family rejects them
  qsyn list                            list built-in benchmarks

OPTIONS (synth/bench/batch):
  --engine bdd|qbf|sat|race  decision engine; `race` runs all three in
                             parallel, first proof wins  [default: bdd]
  --library mct|mct+mcf|mct+p|all                        [default: mct]
  --mixed-polarity           allow negative-control Toffoli gates
  --output-permutation       allow free output-line relabeling
  --heuristic                transformation-based synthesis (fast, non-minimal)
  --max-depth N              depth cap                   [default: 32]
  --timeout SECS             wall-clock budget (per job under `batch`)
  --all                      print every minimal circuit
  --stats                    print BDD manager counters (nodes, GC, cache)
  -o FILE                    write the cheapest circuit to FILE
  --retries N                extra attempts for budget-tripped jobs;
                             budgets double per retry     [default: 0]
  --ladder e1[,e2...]        engines to degrade through on budget-trip
                             retries, e.g. `--ladder sat` (grants one
                             retry per rung if --retries is not given)
  --fault-seed N             arm the deterministic fault-injection plane
                             (builds with `--features faults` only)

OPTIONS (batch only):
  --jobs N                   worker threads              [default: 1]
  --no-cache                 disable the canonical-spec result cache
  --journal FILE             append each completed job to FILE (fsync'd
                             JSONL), enabling crash-safe resume
  --resume                   skip jobs already recorded in --journal,
                             replaying their rows from the journal

  `batch` targets: the literal `suite` (built-in benchmarks), a directory
  of `.spec` files, or a text file with one benchmark name or spec path
  per line. Batch jobs always synthesize with free output permutation, so
  equivalent specs share one cache entry.
";

impl Command {
    /// Parses a command line (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown subcommands, unknown
    /// flags or missing arguments.
    pub fn parse<I, S>(args: I) -> Result<Command, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = args.into_iter().map(Into::into);
        let sub = match args.next() {
            None => return Ok(Command::Help),
            Some(s) => s,
        };
        match sub.as_str() {
            "help" | "-h" | "--help" => Ok(Command::Help),
            "list" => Ok(Command::List),
            "simulate" => {
                let path = args.next().ok_or("simulate: missing circuit file")?;
                let input = args.next().ok_or("simulate: missing input bits")?;
                reject_extra(args)?;
                Ok(Command::Simulate { path, input })
            }
            "cost" => {
                let path = args.next().ok_or("cost: missing circuit file")?;
                reject_extra(args)?;
                Ok(Command::Cost { path })
            }
            "check" => {
                let a = args.next().ok_or("check: missing first circuit")?;
                let b = args.next().ok_or("check: missing second circuit")?;
                reject_extra(args)?;
                Ok(Command::Check { a, b })
            }
            "spec" => {
                let path = args.next().ok_or("spec: missing circuit file")?;
                reject_extra(args)?;
                Ok(Command::SpecOf { path })
            }
            "audit" => {
                let mut paths = Vec::new();
                let mut self_test = false;
                for arg in args {
                    match arg.as_str() {
                        "--self-test" => self_test = true,
                        flag if flag.starts_with('-') => {
                            return Err(format!("unknown option `{flag}`"))
                        }
                        _ => paths.push(arg),
                    }
                }
                if paths.is_empty() && !self_test {
                    return Err("audit: nothing to do (give files or --self-test)".to_string());
                }
                Ok(Command::Audit { paths, self_test })
            }
            "synth" | "bench" => {
                let target = args
                    .next()
                    .ok_or_else(|| format!("{sub}: missing specification"))?;
                let source = if sub == "synth" {
                    Source::File(target)
                } else {
                    Source::Benchmark(target)
                };
                let mut config = SynthConfig::default();
                while let Some(flag) = args.next() {
                    if !parse_synth_flag(&flag, &mut args, &mut config)? {
                        return Err(format!("unknown option `{flag}`"));
                    }
                }
                Ok(Command::Synth { source, config })
            }
            "batch" => {
                let target = args.next().ok_or("batch: missing target")?;
                let mut config = SynthConfig::default();
                let mut jobs = 1usize;
                let mut no_cache = false;
                let mut journal = None;
                let mut resume = false;
                while let Some(flag) = args.next() {
                    match flag.as_str() {
                        "--jobs" => {
                            let v = args.next().ok_or("--jobs needs a value")?;
                            jobs = v.parse().map_err(|_| format!("bad job count `{v}`"))?;
                            if jobs == 0 {
                                return Err("--jobs must be at least 1".to_string());
                            }
                        }
                        "--no-cache" => no_cache = true,
                        "--journal" => {
                            journal = Some(args.next().ok_or("--journal needs a file")?);
                        }
                        "--resume" => resume = true,
                        _ => {
                            if !parse_synth_flag(&flag, &mut args, &mut config)? {
                                return Err(format!("unknown option `{flag}`"));
                            }
                        }
                    }
                }
                if resume && journal.is_none() {
                    return Err("--resume requires --journal".to_string());
                }
                Ok(Command::Batch {
                    target,
                    jobs,
                    no_cache,
                    journal,
                    resume,
                    config,
                })
            }
            other => Err(format!("unknown command `{other}` (try `qsyn help`)")),
        }
    }
}

/// Applies one `synth`/`bench`/`batch` option to `config`. Returns
/// `Ok(false)` when the flag is not a synthesis option (so callers can
/// layer their own flags on top), `Err` on a malformed value.
fn parse_synth_flag<I>(flag: &str, args: &mut I, config: &mut SynthConfig) -> Result<bool, String>
where
    I: Iterator<Item = String>,
{
    match flag {
        "--engine" => {
            let v = args.next().ok_or("--engine needs a value")?;
            config.engine = match v.as_str() {
                "race" => EngineChoice::Race,
                name => EngineChoice::Single(parse_engine_name(name)?),
            };
        }
        "--library" => {
            config.library = args.next().ok_or("--library needs a value")?;
        }
        "--mixed-polarity" => config.mixed_polarity = true,
        "--output-permutation" => config.output_permutation = true,
        "--heuristic" => config.heuristic = true,
        "--max-depth" => {
            let v = args.next().ok_or("--max-depth needs a value")?;
            config.max_depth = v.parse().map_err(|_| format!("bad depth `{v}`"))?;
        }
        "--timeout" => {
            let v = args.next().ok_or("--timeout needs a value")?;
            config.timeout = Some(v.parse().map_err(|_| format!("bad timeout `{v}`"))?);
        }
        "--all" => config.all = true,
        "--stats" => config.stats = true,
        "-o" | "--output" => {
            config.output = Some(args.next().ok_or("-o needs a file")?);
        }
        "--retries" => {
            let v = args.next().ok_or("--retries needs a value")?;
            config.retries = v.parse().map_err(|_| format!("bad retry count `{v}`"))?;
        }
        "--ladder" => {
            let v = args.next().ok_or("--ladder needs engine names")?;
            config.ladder = v
                .split(',')
                .map(|name| parse_engine_name(name.trim()))
                .collect::<Result<Vec<_>, _>>()?;
            if config.ladder.is_empty() {
                return Err("--ladder needs at least one engine".to_string());
            }
        }
        "--fault-seed" => {
            let v = args.next().ok_or("--fault-seed needs a value")?;
            config.fault_seed = Some(v.parse().map_err(|_| format!("bad fault seed `{v}`"))?);
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Parses a single (non-race) engine name.
fn parse_engine_name(name: &str) -> Result<Engine, String> {
    match name {
        "bdd" => Ok(Engine::Bdd),
        "qbf" => Ok(Engine::Qbf),
        "sat" => Ok(Engine::Sat),
        other => Err(format!("unknown engine `{other}`")),
    }
}

fn reject_extra<I: Iterator<Item = String>>(mut args: I) -> Result<(), String> {
    match args.next() {
        Some(extra) => Err(format!("unexpected argument `{extra}`")),
        None => Ok(()),
    }
}

/// Executes a parsed command, writing human-readable output to `out`.
/// Returns the process exit code.
///
/// # Errors
///
/// I/O failures on `out` are surfaced as `Err`.
pub fn run(cmd: &Command, out: &mut dyn std::io::Write) -> std::io::Result<i32> {
    match cmd {
        Command::Help => {
            write!(out, "{USAGE}")?;
            Ok(0)
        }
        Command::List => {
            for b in benchmarks::suite() {
                writeln!(
                    out,
                    "{:<12} {} lines, {}",
                    b.name,
                    b.spec.lines(),
                    match b.kind {
                        benchmarks::BenchmarkKind::Complete => "completely specified",
                        benchmarks::BenchmarkKind::Incomplete => "incompletely specified",
                    }
                )?;
            }
            Ok(0)
        }
        Command::Simulate { path, input } => {
            let circuit = match load_circuit(path) {
                Ok(c) => c,
                Err(e) => return fail(out, &e),
            };
            let n = circuit.lines();
            if input.len() != n as usize || !input.chars().all(|c| c == '0' || c == '1') {
                return fail(out, &format!("input must be {n} binary digits"));
            }
            // Leftmost digit = highest line, consistent with .spec files.
            let mut bits = 0u32;
            for (i, ch) in input.chars().enumerate() {
                if ch == '1' {
                    bits |= 1 << (n as usize - 1 - i);
                }
            }
            let result = circuit.simulate(bits);
            let rendered: String = (0..n)
                .rev()
                .map(|l| if (result >> l) & 1 == 1 { '1' } else { '0' })
                .collect();
            writeln!(out, "{input} -> {rendered}")?;
            Ok(0)
        }
        Command::Cost { path } => {
            let circuit = match load_circuit(path) {
                Ok(c) => c,
                Err(e) => return fail(out, &e),
            };
            let (mct, mcf, peres) = circuit.gate_counts();
            writeln!(out, "lines:        {}", circuit.lines())?;
            writeln!(
                out,
                "gates:        {} (MCT {mct}, MCF {mcf}, Peres {peres})",
                circuit.len()
            )?;
            writeln!(out, "quantum cost: {}", cost::circuit_cost(&circuit))?;
            writeln!(
                out,
                "NCV network:  {} elementary gates (zero-ancilla decomposition)",
                qsyn_revlogic::ncv::network_cost(&circuit)
            )?;
            Ok(0)
        }
        Command::Check { a, b } => {
            let (ca, cb) = match (load_circuit(a), load_circuit(b)) {
                (Ok(x), Ok(y)) => (x, y),
                (Err(e), _) | (_, Err(e)) => return fail(out, &e),
            };
            if ca.lines() != cb.lines() {
                return fail(out, "circuits have different line counts");
            }
            match equivalence::counterexample_sat(&ca, &cb) {
                None => {
                    debug_assert!(equivalence::equivalent_bdd(&ca, &cb));
                    writeln!(out, "EQUIVALENT")?;
                    Ok(0)
                }
                Some(cex) => {
                    let n = ca.lines();
                    let render = |v: u32| -> String {
                        (0..n)
                            .rev()
                            .map(|l| if (v >> l) & 1 == 1 { '1' } else { '0' })
                            .collect()
                    };
                    writeln!(out, "NOT EQUIVALENT")?;
                    writeln!(
                        out,
                        "counterexample: input {} -> {} vs {}",
                        render(cex),
                        render(ca.simulate(cex)),
                        render(cb.simulate(cex))
                    )?;
                    Ok(1)
                }
            }
        }
        Command::SpecOf { path } => {
            let circuit = match load_circuit(path) {
                Ok(c) => c,
                Err(e) => return fail(out, &e),
            };
            let spec = Spec::from_permutation(&circuit.permutation());
            write!(out, "{}", spec_format::write_spec(&spec))?;
            Ok(0)
        }
        Command::Audit { paths, self_test } => run_audit(paths, *self_test, out),
        Command::Synth { source, config } => run_synth(source, config, out),
        Command::Batch {
            target,
            jobs,
            no_cache,
            journal,
            resume,
            config,
        } => run_batch_command(
            target,
            *jobs,
            *no_cache,
            journal.as_deref(),
            *resume,
            config,
            out,
        ),
    }
}

/// Runs a parse-and-audit closure, converting both parse errors and
/// parser panics into a message. The gate and quantifier-prefix
/// constructors assert their invariants (`target cannot be a control`,
/// `variable already quantified`), so a corrupt file must not unwind out
/// of the CLI with exit 101 — it is an input problem, exit 2.
fn parse_guarded<F>(f: F) -> Result<Result<(), crate::audit::AuditError>, String>
where
    F: FnOnce() -> Result<Result<(), crate::audit::AuditError>, String> + std::panic::UnwindSafe,
{
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(f);
    std::panic::set_hook(prev);
    match result {
        Ok(r) => r,
        Err(payload) => Err(payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "malformed input".to_string())),
    }
}

/// Executes `qsyn audit`: optional self-test, then one auditor run per
/// file (dispatched on extension). Exit code 0 = everything clean,
/// 1 = at least one violation, 2 = unreadable/unparsable input.
fn run_audit(
    paths: &[String],
    self_test: bool,
    out: &mut dyn std::io::Write,
) -> std::io::Result<i32> {
    let mut code = 0;
    if self_test {
        match crate::audit::self_test() {
            Ok(report) => writeln!(out, "self-test: {report}")?,
            Err(msg) => return fail(out, &format!("self-test failed: {msg}")),
        }
    }
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(out, &format!("{path}: {e}")),
        };
        let ext = std::path::Path::new(path)
            .extension()
            .map(|e| e.to_string_lossy().into_owned())
            .unwrap_or_default();
        let outcome = match ext.as_str() {
            "real" => parse_guarded(|| {
                real::parse_real(&text)
                    .map_err(|e| e.to_string())
                    .map(|c| crate::audit::circuit_audit::audit_circuit(&c, None))
            }),
            "cnf" | "dimacs" => parse_guarded(|| {
                crate::sat::dimacs::parse_dimacs(&text)
                    .map_err(|e| e.to_string())
                    .map(|f| crate::audit::formula_audit::audit_cnf(&f))
            }),
            // QDIMACS treats unbound variables as outermost-existential,
            // so closure is not required of files.
            "qdimacs" => parse_guarded(|| {
                crate::qbf::qdimacs::parse_qdimacs(&text)
                    .map_err(|e| e.to_string())
                    .map(|q| crate::audit::formula_audit::audit_qbf(&q, false))
            }),
            other => {
                return fail(
                    out,
                    &format!("{path}: unsupported extension `{other}` (want .real/.cnf/.qdimacs)"),
                )
            }
        };
        let outcome = match outcome {
            Ok(o) => o,
            Err(msg) => return fail(out, &format!("{path}: {msg}")),
        };
        match outcome {
            Ok(()) => writeln!(out, "{path}: ok")?,
            Err(e) => {
                code = 1;
                writeln!(out, "{path}: {e}")?;
            }
        }
    }
    Ok(code)
}

fn run_synth(
    source: &Source,
    config: &SynthConfig,
    out: &mut dyn std::io::Write,
) -> std::io::Result<i32> {
    let spec = match source {
        Source::File(path) => match std::fs::read_to_string(path) {
            Ok(text) => match spec_format::parse_spec(&text) {
                Ok(s) => s,
                Err(e) => return fail(out, &e.to_string()),
            },
            Err(e) => return fail(out, &format!("{path}: {e}")),
        },
        Source::Benchmark(name) => match benchmarks::by_name(name) {
            Some(b) => b.spec,
            None => {
                return fail(
                    out,
                    &format!("unknown benchmark `{name}` (see `qsyn list`)"),
                )
            }
        },
    };
    let options = match config.options() {
        Ok(o) => o,
        Err(e) => return fail(out, &e),
    };
    if config.heuristic {
        let Some(perm) = spec.as_permutation() else {
            return fail(
                out,
                "--heuristic requires a completely specified (bijective) function",
            );
        };
        let circuit = crate::synth::transform::transformation_synthesis(&perm);
        writeln!(
            out,
            "heuristic realization: {} gates, quantum cost {} (no minimality guarantee)",
            circuit.len(),
            cost::circuit_cost(&circuit)
        )?;
        if let Some(path) = &config.output {
            std::fs::write(path, real::write_real(&circuit))?;
            writeln!(out, "wrote {path}")?;
        } else {
            write!(out, "{}", real::write_real(&circuit))?;
        }
        return Ok(0);
    }
    let _faults = match FaultArming::from_config(config) {
        Ok(g) => g,
        Err(msg) => return fail(out, &msg),
    };
    let race = config.engine == EngineChoice::Race;
    let policy = config.retry_policy();
    if config.output_permutation {
        // The ladder's engine override turns a raced attempt into a
        // single-engine one: degradation narrows the portfolio.
        let outcome = run_with_retry(&policy, |attempt| {
            let opts = apply_attempt(&options, attempt);
            if race && attempt.engine.is_none() {
                race_engines_permuted(&spec, &opts)
                    .map(|r| (r.winner, Some(r.winner_label)))
                    .map_err(|e| e.into_synthesis_error())
            } else {
                permuted::synthesize_with_output_permutation(&spec, &opts).map(|p| (p, None))
            }
        });
        let recovery = recovery_note(&outcome);
        match outcome.result {
            Err(e) => fail(out, &e.to_string()),
            Ok((p, winner)) => {
                writeln!(
                    out,
                    "minimal gates: {} (output permutation {:?}), {} solutions, {:?}{}",
                    p.result.depth(),
                    p.permutation,
                    p.result.solutions().count_display(),
                    p.result.total_time(),
                    race_note(winner.as_deref())
                )?;
                if let Some(note) = recovery {
                    writeln!(out, "{note}")?;
                }
                emit_stats(&p.result, config, out)?;
                emit_circuits(&p.result, config, out)
            }
        }
    } else {
        let outcome = run_with_retry(&policy, |attempt| {
            let opts = apply_attempt(&options, attempt);
            if race && attempt.engine.is_none() {
                race_engines(&spec, &opts)
                    .map(|r| (r.winner, Some(r.winner_label)))
                    .map_err(|e| e.into_synthesis_error())
            } else {
                synthesize(&spec, &opts).map(|r| (r, None))
            }
        });
        let recovery = recovery_note(&outcome);
        match outcome.result {
            Err(e) => fail(out, &e.to_string()),
            Ok((r, winner)) => {
                let (lo, hi) = r.solutions().quantum_cost_range();
                writeln!(
                    out,
                    "minimal gates: {}, {} solutions, quantum cost {lo}..{hi}, {:?} ({} engine){}",
                    r.depth(),
                    r.solutions().count_display(),
                    r.total_time(),
                    r.engine(),
                    race_note(winner.as_deref())
                )?;
                if let Some(note) = recovery {
                    writeln!(out, "{note}")?;
                }
                emit_stats(&r, config, out)?;
                emit_circuits(&r, config, out)
            }
        }
    }
}

/// Applies a retry [`Attempt`] to the configured options: the ladder's
/// engine override plus the compound budget escalation over the node,
/// conflict and wall-clock limits.
fn apply_attempt(options: &SynthesisOptions, attempt: &Attempt) -> SynthesisOptions {
    let mut o = options.clone();
    if let Some(engine) = attempt.engine {
        o = o.with_engine(engine);
    }
    if attempt.budget_scale > 1.0 {
        let nodes = attempt.scale_budget(o.bdd_node_limit as u64);
        let conflicts = attempt.scale_budget(o.conflict_limit);
        o = o
            .with_bdd_node_limit(usize::try_from(nodes).unwrap_or(usize::MAX))
            .with_conflict_limit(conflicts);
        if let Some(budget) = o.time_budget {
            o = o.with_time_budget(attempt.scale_duration(budget));
        }
    }
    o
}

/// One line describing a recovered (multi-attempt) run, `None` for a
/// clean first-attempt success or failure.
fn recovery_note<R>(outcome: &crate::synth::RetryOutcome<R>) -> Option<String> {
    if !outcome.degraded() {
        return None;
    }
    Some(format!(
        "recovered after {} attempts{}",
        outcome.attempts,
        ladder_note(&outcome.ladder_path)
    ))
}

/// `", via sat"` — the engines a degraded job was routed through.
fn ladder_note(path: &[Engine]) -> String {
    if path.is_empty() {
        return String::new();
    }
    let names: Vec<String> = path.iter().map(ToString::to_string).collect();
    format!(", via {}", names.join(" -> "))
}

/// RAII arming of the fault-injection plane from `--fault-seed`:
/// rejected on builds without the plane compiled in, disarmed when the
/// command finishes (so in-process callers — tests — are not poisoned).
struct FaultArming(bool);

impl FaultArming {
    /// Whether this guard actually armed the fault plane.
    fn armed(&self) -> bool {
        self.0
    }

    fn from_config(config: &SynthConfig) -> Result<FaultArming, String> {
        match config.fault_seed {
            None => Ok(FaultArming(false)),
            Some(seed) => {
                if !qsyn_faults::FaultPlane::compiled_in() {
                    return Err(
                        "--fault-seed requires a binary built with `--features faults`".to_string(),
                    );
                }
                qsyn_faults::FaultPlane::arm(seed);
                Ok(FaultArming(true))
            }
        }
    }
}

impl Drop for FaultArming {
    fn drop(&mut self) {
        if self.0 {
            qsyn_faults::FaultPlane::disarm();
        }
    }
}

fn emit_stats(
    result: &crate::synth::SynthesisResult,
    config: &SynthConfig,
    out: &mut dyn std::io::Write,
) -> std::io::Result<()> {
    if config.stats {
        match result.bdd_stats() {
            Some(s) => writeln!(out, "bdd: {s}")?,
            None => writeln!(
                out,
                "bdd: n/a ({} engine has no BDD manager)",
                result.engine()
            )?,
        }
    }
    Ok(())
}

fn race_note(winner: Option<&str>) -> String {
    match winner {
        Some(label) => format!(" [race winner: {label}]"),
        None => String::new(),
    }
}

/// Resolves a `batch` target into named specifications, in a stable order.
fn batch_jobs(target: &str) -> Result<Vec<(String, Spec)>, String> {
    if target == "suite" {
        return Ok(benchmarks::suite()
            .into_iter()
            .map(|b| (b.name.to_string(), b.spec))
            .collect());
    }
    let path = std::path::Path::new(target);
    if path.is_dir() {
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{target}: {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "spec"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("{target}: no .spec files found"));
        }
        return files
            .into_iter()
            .map(|p| {
                let name = p.file_stem().map_or_else(
                    || p.display().to_string(),
                    |s| s.to_string_lossy().into_owned(),
                );
                let text =
                    std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
                let spec =
                    spec_format::parse_spec(&text).map_err(|e| format!("{}: {e}", p.display()))?;
                Ok((name, spec))
            })
            .collect();
    }
    // A list file: one benchmark name or .spec path per line.
    let text = std::fs::read_to_string(path).map_err(|e| format!("{target}: {e}"))?;
    let mut jobs = Vec::new();
    for line in text.lines() {
        let entry = line.trim();
        if entry.is_empty() || entry.starts_with('#') {
            continue;
        }
        if let Some(b) = benchmarks::by_name(entry) {
            jobs.push((entry.to_string(), b.spec));
        } else {
            let text = std::fs::read_to_string(entry).map_err(|_| {
                format!("`{entry}` is neither a benchmark name nor a readable spec file")
            })?;
            let spec = spec_format::parse_spec(&text).map_err(|e| format!("{entry}: {e}"))?;
            let name = std::path::Path::new(entry)
                .file_stem()
                .map_or_else(|| entry.to_string(), |s| s.to_string_lossy().into_owned());
            jobs.push((name, spec));
        }
    }
    if jobs.is_empty() {
        return Err(format!("{target}: no jobs"));
    }
    Ok(jobs)
}

/// One scheduled batch job: its input position, name and specification,
/// plus the precomputed journal key.
struct BatchJob {
    name: String,
    spec: Spec,
    key: String,
}

/// Builds the journal record for a completed job.
fn journal_record(job: &BatchJob, p: &PermutedSynthesisResult, elapsed: Duration) -> JournalRecord {
    JournalRecord {
        key: job.key.clone(),
        name: job.name.clone(),
        depth: p.result.depth(),
        solutions: p.result.solutions().count_display(),
        permutation: format!("{:?}", p.permutation),
        elapsed_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
        digest: result_digest(p),
    }
}

/// FNV-1a digest over a result's semantic content — depth, solution
/// count, output permutation and the cheapest circuit. The chaos harness
/// compares these across fault schedules; wall-clock time is excluded.
fn result_digest(p: &PermutedSynthesisResult) -> String {
    let mut h = Fnv1a::new();
    h.write_u32(p.result.depth());
    h.write(p.result.solutions().count_display().as_bytes());
    h.write(format!("{:?}", p.permutation).as_bytes());
    h.write(real::write_real(p.result.solutions().best_by_quantum_cost()).as_bytes());
    format!("{:016x}", h.finish())
}

#[allow(clippy::too_many_lines)]
fn run_batch_command(
    target: &str,
    jobs: usize,
    no_cache: bool,
    journal: Option<&str>,
    resume: bool,
    config: &SynthConfig,
    out: &mut dyn std::io::Write,
) -> std::io::Result<i32> {
    let work = match batch_jobs(target) {
        Ok(w) => w,
        Err(e) => return fail(out, &e),
    };
    let options = match config.options() {
        Ok(o) => o,
        Err(e) => return fail(out, &e),
    };
    let _faults = match FaultArming::from_config(config) {
        Ok(g) => g,
        Err(e) => return fail(out, &e),
    };
    let engine = config.engine;
    let cache = if no_cache {
        None
    } else {
        Some(SpecCache::new())
    };
    let batch_config = BatchConfig {
        workers: jobs,
        per_job_timeout: config.timeout.map(Duration::from_secs),
        retry: config.retry_policy(),
    };

    // Journal bookkeeping: with --resume, jobs whose key is already
    // recorded are replayed from the journal instead of re-run; with
    // --journal, every completion is appended (fsync'd) as it lands.
    let journal_path = journal.map(std::path::PathBuf::from);
    let mut completed: HashMap<String, JournalRecord> = HashMap::new();
    if resume {
        let path = journal_path.as_ref().expect("--resume requires --journal");
        match read_journal(path) {
            Ok(records) => {
                for r in records {
                    completed.insert(r.key.clone(), r);
                }
            }
            Err(e) => return fail(out, &format!("{}: {e}", path.display())),
        }
    }
    let writer = match &journal_path {
        Some(path) => match JournalWriter::open(path) {
            Ok(w) => Some(Mutex::new(w)),
            Err(e) => return fail(out, &format!("{}: {e}", path.display())),
        },
        None => None,
    };
    let journal_error: Mutex<Option<std::io::Error>> = Mutex::new(None);

    // Split the batch: `None` rows are filled from this run's reports,
    // in order; `Some` rows replay a journaled completion.
    let mut rows: Vec<Option<JournalRecord>> = Vec::with_capacity(work.len());
    let mut to_run: Vec<(String, BatchJob)> = Vec::new();
    for (index, (name, spec)) in work.into_iter().enumerate() {
        let key = job_key(index, &name, &spec);
        if let Some(rec) = completed.get(&key) {
            rows.push(Some(rec.clone()));
        } else {
            rows.push(None);
            to_run.push((name.clone(), BatchJob { name, spec, key }));
        }
    }
    let total_jobs = rows.len();

    // Every batch job synthesizes with free output permutation: the answer
    // is minimal over the whole output-permutation class, so a cache hit
    // (which reuses the class representative's result) reports the same
    // depth a cache miss would.
    let run_one = |job: &BatchJob,
                   token: &CancelToken,
                   session: &mut SynthesisSession,
                   attempt: &Attempt|
     -> Result<PermutedSynthesisResult, SynthesisError> {
        let opts = apply_attempt(&options, attempt).with_cancel_token(token.clone());
        let job_started = Instant::now();
        // The ladder's engine override degrades a raced job to the one
        // named engine; undegraded attempts keep the configured choice.
        let mut compute = |s: &Spec| {
            if engine == EngineChoice::Race && attempt.engine.is_none() {
                race_engines_permuted(s, &opts)
                    .map(|r| r.winner)
                    .map_err(|e| e.into_synthesis_error())
            } else {
                permuted::synthesize_with_output_permutation_in(s, &opts, session)
            }
        };
        let result = match &cache {
            Some(c) => c.get_or_compute(&job.spec, compute),
            None => compute(&job.spec),
        };
        // Journal the completion before reporting it, from inside the
        // worker: a kill between jobs then loses nothing.
        if let (Ok(p), Some(w)) = (&result, &writer) {
            let record = journal_record(job, p, job_started.elapsed());
            if let Err(e) = w.lock().expect("journal lock").append(&record) {
                journal_error
                    .lock()
                    .expect("journal error lock")
                    .get_or_insert(e);
            }
        }
        result
    };
    let started = Instant::now();
    let outcome = run_batch(to_run, &batch_config, None, run_one);
    let total = started.elapsed();

    writeln!(
        out,
        "{:<12} {:>5} {:>9} {:<14} {:>9}  status",
        "name", "gates", "solutions", "permutation", "time"
    )?;
    let mut failed = 0usize;
    let mut fresh = outcome.reports.into_iter();
    for row in rows {
        if let Some(rec) = row {
            // A replayed job prints exactly like the original completion
            // (including its recorded wall-clock time), so a resumed
            // batch merges into the same report the unkilled run prints.
            writeln!(
                out,
                "{:<12} {:>5} {:>9} {:<14} {:>8.1?}  ok",
                rec.name,
                rec.depth,
                rec.solutions,
                rec.permutation,
                Duration::from_nanos(rec.elapsed_ns)
            )?;
            continue;
        }
        let r = fresh.next().expect("one report per scheduled job");
        match &r.status {
            JobStatus::Done(p) => writeln!(
                out,
                "{:<12} {:>5} {:>9} {:<14} {:>8.1?}  ok",
                r.name,
                p.result.depth(),
                p.result.solutions().count_display(),
                format!("{:?}", p.permutation),
                r.elapsed
            )?,
            JobStatus::Degraded {
                result: p,
                attempts,
                ladder_path,
            } => writeln!(
                out,
                "{:<12} {:>5} {:>9} {:<14} {:>8.1?}  ok (recovered: {} attempts{})",
                r.name,
                p.result.depth(),
                p.result.solutions().count_display(),
                format!("{:?}", p.permutation),
                r.elapsed,
                attempts,
                ladder_note(ladder_path)
            )?,
            JobStatus::Failed(e) => {
                failed += 1;
                writeln!(
                    out,
                    "{:<12} {:>5} {:>9} {:<14} {:>8.1?}  error: {e}",
                    r.name, "-", "-", "-", r.elapsed
                )?;
            }
            JobStatus::Panicked {
                message, location, ..
            } => {
                failed += 1;
                let at = location
                    .as_ref()
                    .map(|l| format!(" at {l}"))
                    .unwrap_or_default();
                writeln!(
                    out,
                    "{:<12} {:>5} {:>9} {:<14} {:>8.1?}  panicked: {message}{at}",
                    r.name, "-", "-", "-", r.elapsed
                )?;
            }
        }
    }
    let cache_note = match &cache {
        Some(c) => {
            let (hits, misses) = c.stats();
            format!(", cache {hits} hits / {misses} misses")
        }
        None => String::new(),
    };
    writeln!(
        out,
        "{} jobs, {} ok, {} failed in {:.1?} ({} engine, {} worker{}{cache_note})",
        total_jobs,
        total_jobs - failed,
        failed,
        total,
        engine,
        jobs,
        if jobs == 1 { "" } else { "s" },
    )?;
    if config.stats {
        writeln!(out, "sessions: {}", outcome.session_stats)?;
        if _faults.armed() {
            let fired = qsyn_faults::FaultPlane::fired();
            if fired.is_empty() {
                writeln!(out, "faults: none fired")?;
            } else {
                let list: Vec<String> = fired
                    .iter()
                    .map(|(site, kind)| format!("{} {kind}", site.name()))
                    .collect();
                writeln!(out, "faults: {}", list.join(", "))?;
            }
        }
    }
    if let Some(e) = journal_error.into_inner().expect("journal error lock") {
        writeln!(out, "warning: journal write failed: {e}")?;
    }
    Ok(i32::from(failed > 0))
}

fn emit_circuits(
    result: &crate::synth::SynthesisResult,
    config: &SynthConfig,
    out: &mut dyn std::io::Write,
) -> std::io::Result<i32> {
    let best = result.solutions().best_by_quantum_cost();
    if let Some(path) = &config.output {
        std::fs::write(path, real::write_real(best))?;
        writeln!(out, "wrote {path}")?;
    } else if config.all {
        for (i, c) in result.solutions().circuits().iter().enumerate() {
            writeln!(
                out,
                "# solution {} (quantum cost {})",
                i + 1,
                cost::circuit_cost(c)
            )?;
            write!(out, "{c}")?;
        }
    } else {
        write!(out, "{}", real::write_real(best))?;
    }
    Ok(0)
}

fn load_circuit(path: &str) -> Result<crate::revlogic::Circuit, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    real::parse_real(&text).map_err(|e| e.to_string())
}

fn fail(out: &mut dyn std::io::Write, message: &str) -> std::io::Result<i32> {
    writeln!(out, "error: {message}")?;
    Ok(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        Command::parse(args.iter().copied())
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse(&[]), Ok(Command::Help));
        assert_eq!(parse(&["--help"]), Ok(Command::Help));
    }

    #[test]
    fn parses_bench_with_options() {
        let cmd = parse(&[
            "bench",
            "3_17",
            "--engine",
            "sat",
            "--library",
            "mct+p",
            "--mixed-polarity",
            "--max-depth",
            "9",
            "--timeout",
            "5",
            "--all",
            "--stats",
        ])
        .unwrap();
        let Command::Synth { source, config } = cmd else {
            panic!("expected synth");
        };
        assert_eq!(source, Source::Benchmark("3_17".into()));
        assert_eq!(config.engine, EngineChoice::Single(Engine::Sat));
        assert_eq!(config.library, "mct+p");
        assert!(config.mixed_polarity);
        assert_eq!(config.max_depth, 9);
        assert_eq!(config.timeout, Some(5));
        assert!(config.all);
        assert!(config.stats);
        assert!(config.gate_library().unwrap().has_mixed_polarity());
    }

    #[test]
    fn stats_flag_prints_manager_counters() {
        let cmd = parse(&["bench", "3_17", "--stats"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("bdd: "), "{text}");
        assert!(text.contains("hit rate"), "{text}");
    }

    #[test]
    fn rejects_unknown_flags_and_commands() {
        assert!(parse(&["bench", "3_17", "--wat"]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["bench", "3_17", "--engine", "magic"]).is_err());
        assert!(parse(&["simulate", "a.real"]).is_err());
        assert!(parse(&["cost", "a.real", "extra"]).is_err());
        assert!(parse(&["batch"]).is_err());
        assert!(parse(&["batch", "suite", "--jobs"]).is_err());
        assert!(parse(&["batch", "suite", "--jobs", "0"]).is_err());
        assert!(parse(&["batch", "suite", "--wat"]).is_err());
    }

    #[test]
    fn parses_batch_with_options() {
        let cmd = parse(&[
            "batch",
            "suite",
            "--jobs",
            "4",
            "--engine",
            "race",
            "--no-cache",
            "--timeout",
            "30",
        ])
        .unwrap();
        let Command::Batch {
            target,
            jobs,
            no_cache,
            journal,
            resume,
            config,
        } = cmd
        else {
            panic!("expected batch");
        };
        assert_eq!(target, "suite");
        assert_eq!(jobs, 4);
        assert!(no_cache);
        assert_eq!(journal, None);
        assert!(!resume);
        assert_eq!(config.engine, EngineChoice::Race);
        assert_eq!(config.timeout, Some(30));
    }

    #[test]
    fn parses_robustness_flags() {
        let cmd = parse(&[
            "batch",
            "suite",
            "--journal",
            "runs.jsonl",
            "--resume",
            "--retries",
            "2",
            "--ladder",
            "qbf,sat",
            "--fault-seed",
            "7",
        ])
        .unwrap();
        let Command::Batch {
            journal,
            resume,
            config,
            ..
        } = cmd
        else {
            panic!("expected batch");
        };
        assert_eq!(journal.as_deref(), Some("runs.jsonl"));
        assert!(resume);
        assert_eq!(config.retries, 2);
        assert_eq!(config.ladder, vec![Engine::Qbf, Engine::Sat]);
        assert_eq!(config.fault_seed, Some(7));
        let policy = config.retry_policy();
        assert_eq!(policy.max_attempts, 3);
        assert_eq!(policy.engine_ladder, vec![Engine::Qbf, Engine::Sat]);
        // --ladder without --retries grants one retry per rung.
        let cmd = parse(&["bench", "3_17", "--ladder", "sat"]).unwrap();
        let Command::Synth { config, .. } = cmd else {
            panic!("expected synth");
        };
        assert_eq!(config.retry_policy().max_attempts, 2);
        // Malformed robustness flags are rejected.
        assert!(parse(&["batch", "suite", "--resume"]).is_err());
        assert!(parse(&["batch", "suite", "--ladder", "race"]).is_err());
        assert!(parse(&["batch", "suite", "--ladder", ""]).is_err());
        assert!(parse(&["batch", "suite", "--retries", "x"]).is_err());
        assert!(parse(&["batch", "suite", "--fault-seed", "-1"]).is_err());
    }

    #[cfg(not(feature = "faults"))]
    #[test]
    fn fault_seed_is_rejected_without_the_faults_feature() {
        let cmd = parse(&["bench", "3_17", "--fault-seed", "1"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 2);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("--features faults"), "{text}");
    }

    #[test]
    fn batch_of_mixed_jobs_prints_one_row_per_job() {
        let dir = std::env::temp_dir().join("qsyn-cli-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        // cnot-twin is cnot with the output lines relabeled (rows mapped
        // through the swap), so the cache must answer it with a hit.
        let cnot = dir.join("cnot.spec");
        std::fs::write(
            &cnot,
            ".numvars 2\n.begin\n00 00\n01 11\n10 10\n11 01\n.end\n",
        )
        .unwrap();
        let twin = dir.join("cnot-twin.spec");
        std::fs::write(
            &twin,
            ".numvars 2\n.begin\n00 00\n01 11\n10 01\n11 10\n.end\n",
        )
        .unwrap();
        let list = dir.join("jobs.txt");
        let entries = format!(
            "# one benchmark, two spec files\n3_17\n{}\n{}\n",
            cnot.display(),
            twin.display()
        );
        std::fs::write(&list, entries).unwrap();
        let cmd = parse(&["batch", list.to_str().unwrap(), "--jobs", "2"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("3_17"), "{text}");
        assert!(text.contains("cnot"), "{text}");
        assert!(text.contains("cnot-twin"), "{text}");
        assert!(text.contains("3 jobs, 3 ok, 0 failed"), "{text}");
        assert!(text.contains("cache 1 hits / 2 misses"), "{text}");
    }

    #[test]
    fn batch_journal_records_and_resume_replays() {
        let dir = std::env::temp_dir().join(format!("qsyn-cli-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cnot = dir.join("cnot.spec");
        std::fs::write(
            &cnot,
            ".numvars 2\n.begin\n00 00\n01 11\n10 10\n11 01\n.end\n",
        )
        .unwrap();
        let list = dir.join("jobs.txt");
        std::fs::write(&list, format!("3_17\n{}\n", cnot.display())).unwrap();
        let journal = dir.join("runs.jsonl");
        let _ = std::fs::remove_file(&journal);

        // Full run: every completion is journaled.
        let cmd = parse(&[
            "batch",
            list.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
        ])
        .unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let full = crate::portfolio::read_journal(&journal).unwrap();
        assert_eq!(full.len(), 2, "{full:?}");

        // Simulate a kill after the first job: truncate the journal to
        // its first record, then resume. The first job is replayed (its
        // recorded time reappears verbatim), the second re-runs, and the
        // rebuilt journal carries the same result digests as the full run.
        std::fs::write(
            &journal,
            format!("{}\n", crate::portfolio::journal::render_record(&full[0])),
        )
        .unwrap();
        let cmd = parse(&[
            "batch",
            list.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
            "--resume",
        ])
        .unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("2 jobs, 2 ok, 0 failed"), "{text}");
        assert!(
            text.contains(&format!("{:.1?}", Duration::from_nanos(full[0].elapsed_ns))),
            "replayed row reprints the journaled time\n{text}"
        );
        let resumed = crate::portfolio::read_journal(&journal).unwrap();
        assert_eq!(resumed.len(), 2);
        for (a, b) in full.iter().zip(&resumed) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.digest, b.digest, "resume must reproduce {}", a.name);
        }

        // A resume over a complete journal re-runs nothing: the cache
        // sees no traffic at all.
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("cache 0 hits / 0 misses"), "{text}");
    }

    #[test]
    fn batch_rejects_bad_targets() {
        let cmd = parse(&["batch", "/nonexistent/nowhere"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 2);
    }

    #[test]
    fn race_engine_synthesizes_a_benchmark() {
        let cmd = parse(&["bench", "3_17", "--engine", "race"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("minimal gates: 6"), "{text}");
        assert!(text.contains("race winner:"), "{text}");
    }

    #[test]
    fn parses_audit_command() {
        assert_eq!(
            parse(&["audit", "--self-test"]),
            Ok(Command::Audit {
                paths: vec![],
                self_test: true,
            })
        );
        assert_eq!(
            parse(&["audit", "a.real", "b.cnf"]),
            Ok(Command::Audit {
                paths: vec!["a.real".into(), "b.cnf".into()],
                self_test: false,
            })
        );
        // No files and no --self-test is an error, as is an unknown flag.
        assert!(parse(&["audit"]).is_err());
        assert!(parse(&["audit", "--wat"]).is_err());
    }

    #[test]
    fn audit_self_test_reports_accepts_and_rejections() {
        let cmd = parse(&["audit", "--self-test"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("self-test"), "{text}");
        assert!(text.contains("rejected"), "{text}");
    }

    #[test]
    fn audit_accepts_clean_files_and_rejects_garbage() {
        let dir = std::env::temp_dir().join("qsyn-cli-audit-test");
        std::fs::create_dir_all(&dir).unwrap();
        let circ = dir.join("ok.real");
        std::fs::write(&circ, ".numvars 2\n.begin\nt2 x1 x2\n.end\n").unwrap();
        let qbf = dir.join("ok.qdimacs");
        std::fs::write(&qbf, "p cnf 2 1\ne 1 0\n1 -2 0\n").unwrap();
        let cmd = parse(&["audit", circ.to_str().unwrap(), qbf.to_str().unwrap()]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.matches(": ok").count(), 2, "{text}");
        // Unknown extensions and unreadable files exit 2.
        let cmd = parse(&["audit", "nope.xyz"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 2);
    }

    #[test]
    fn audit_reports_parser_asserts_as_input_errors() {
        // The gate and prefix constructors assert their invariants; a
        // corrupt file must exit 2 with a message, not unwind (exit 101).
        let dir = std::env::temp_dir().join("qsyn-cli-audit-panic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let overlap = dir.join("overlap.real");
        std::fs::write(&overlap, ".numvars 2\n.begin\nt2 x1 x1\n.end\n").unwrap();
        let cmd = parse(&["audit", overlap.to_str().unwrap()]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 2);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("target cannot be a control"), "{text}");

        let dup = dir.join("dup.qdimacs");
        std::fs::write(&dup, "p cnf 2 1\ne 1 0\ne 1 0\n1 -2 0\n").unwrap();
        let cmd = parse(&["audit", dup.to_str().unwrap()]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 2);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("already quantified"), "{text}");
    }

    #[test]
    fn library_resolution() {
        let mut c = SynthConfig::default();
        assert_eq!(c.gate_library().unwrap().label(), "MCT");
        c.library = "all".into();
        assert_eq!(c.gate_library().unwrap().label(), "MCT+MCF+P");
        c.library = "bogus".into();
        assert!(c.gate_library().is_err());
    }

    #[test]
    fn list_prints_benchmarks() {
        let mut buf = Vec::new();
        assert_eq!(run(&Command::List, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("hwb4"));
        assert!(text.contains("alu-v3"));
    }

    #[test]
    fn bench_synthesis_end_to_end() {
        let cmd = parse(&["bench", "3_17"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("minimal gates: 6"), "{text}");
        assert!(text.contains(".begin"));
    }

    #[test]
    fn unknown_benchmark_fails_cleanly() {
        let cmd = parse(&["bench", "nope"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 2);
        assert!(String::from_utf8(buf)
            .unwrap()
            .contains("unknown benchmark"));
    }

    #[test]
    fn synth_from_spec_file_and_check_roundtrip() {
        let dir = std::env::temp_dir().join("qsyn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("xor.spec");
        // 2-line spec: x2 ^= x1 (a CNOT).
        std::fs::write(
            &spec_path,
            ".numvars 2\n.begin\n00 00\n01 11\n10 10\n11 01\n.end\n",
        )
        .unwrap();
        let out_path = dir.join("xor.real");
        let cmd = parse(&[
            "synth",
            spec_path.to_str().unwrap(),
            "-o",
            out_path.to_str().unwrap(),
        ])
        .unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        // simulate 01 (x1 = 1) → 11.
        let sim = parse(&["simulate", out_path.to_str().unwrap(), "01"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&sim, &mut buf).unwrap(), 0);
        assert!(String::from_utf8(buf).unwrap().contains("01 -> 11"));
        // cost works.
        let cost_cmd = parse(&["cost", out_path.to_str().unwrap()]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cost_cmd, &mut buf).unwrap(), 0);
        // self-equivalence.
        let check = parse(&[
            "check",
            out_path.to_str().unwrap(),
            out_path.to_str().unwrap(),
        ])
        .unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&check, &mut buf).unwrap(), 0);
        assert!(String::from_utf8(buf).unwrap().contains("EQUIVALENT"));
        // spec extraction contains the truth table.
        let spec_cmd = parse(&["spec", out_path.to_str().unwrap()]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&spec_cmd, &mut buf).unwrap(), 0);
        assert!(String::from_utf8(buf).unwrap().contains("01 11"));
    }

    #[test]
    fn heuristic_flag_synthesizes_fast() {
        let cmd = parse(&["bench", "hwb4", "--heuristic"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("heuristic realization"), "{text}");
        assert!(text.contains(".begin"));
    }

    #[test]
    fn heuristic_rejects_incomplete_specs() {
        let cmd = parse(&["bench", "rd32-v0", "--heuristic"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 2);
        assert!(String::from_utf8(buf)
            .unwrap()
            .contains("completely specified"));
    }

    #[test]
    fn output_permutation_flag_works() {
        // SWAP: free with output permutation.
        let dir = std::env::temp_dir().join("qsyn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("swap.spec");
        std::fs::write(
            &spec_path,
            ".numvars 2\n.begin\n00 00\n01 10\n10 01\n11 11\n.end\n",
        )
        .unwrap();
        let cmd = parse(&["synth", spec_path.to_str().unwrap(), "--output-permutation"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("minimal gates: 0"), "{text}");
    }
}
