//! Command-line interface for the `qsyn` tool.
//!
//! Subcommands:
//!
//! * `synth <file.spec>` — exact synthesis of a truth-table specification,
//!   emitting a RevLib `.real` circuit,
//! * `bench <name>` — synthesize a built-in benchmark,
//! * `batch <suite|dir|list>` — synthesize many specifications on a worker
//!   pool (the engine portfolio's batch scheduler),
//! * `simulate <file.real> <bits>` — run a circuit on one input,
//! * `cost <file.real>` — gate count and quantum cost,
//! * `check <a.real> <b.real>` — equivalence check with counterexample,
//! * `spec <file.real>` — extract the truth table of a circuit,
//! * `audit [files…] [--self-test]` — run the invariant auditors over
//!   `.real` / `.cnf` / `.qdimacs` files, or over seeded self-test
//!   corruptions,
//! * `serve <addr>` — long-running synthesis daemon: newline-delimited
//!   JSON over TCP, answering repeats from a persistent circuit database,
//! * `query <addr> …` — one-shot client for a running daemon,
//! * `store verify|stats <file>` — inspect a circuit database offline,
//! * `list` — list the built-in benchmarks.
//!
//! The argument grammar is deliberately tiny and fully testable; see
//! [`Command::parse`].

use crate::portfolio::cache::{canonicalize, SpecCache};
use crate::portfolio::journal::{job_key, read_journal, Fnv1a, JournalRecord, JournalWriter};
use crate::portfolio::race::{race_engines, race_engines_permuted};
use crate::portfolio::scheduler::{run_batch, BatchConfig, JobStatus};
use crate::revlogic::{benchmarks, cost, real, spec_format, GateLibrary, Spec};
use crate::serve::{protocol, roundtrip, serve_tcp, ServeConfig, ServeCore};
use crate::store::{Store, StoredCircuit};
use crate::synth::permuted::PermutedSynthesisResult;
use crate::synth::{
    equivalence, permuted, run_with_retry, synthesize, Attempt, CancelToken, Engine, RetryPolicy,
    SolutionSet, SynthesisError, SynthesisOptions, SynthesisResult, SynthesisSession,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A parsed command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `synth` / `bench`: run exact synthesis.
    Synth {
        /// Path to a `.spec` file, or a benchmark name for `bench`.
        source: Source,
        /// Synthesis configuration.
        config: SynthConfig,
    },
    /// `batch <suite|dir|list-file>`: synthesize many specifications on a
    /// worker pool.
    Batch {
        /// `suite` (the built-in benchmarks), a directory of `.spec` files,
        /// or a text file listing benchmark names / spec paths.
        target: String,
        /// Worker threads (`--jobs N`).
        jobs: usize,
        /// Disable the canonical-spec result cache (`--no-cache`).
        no_cache: bool,
        /// Append each completed job to this fsync'd JSONL journal
        /// (`--journal FILE`), enabling crash-safe resume.
        journal: Option<String>,
        /// Skip jobs already completed in the journal (`--resume`),
        /// replaying their recorded rows instead of re-running them.
        resume: bool,
        /// Persistent circuit database (`--store FILE`): hits replay the
        /// stored record without an engine, fresh results are appended.
        store: Option<String>,
        /// Skip the output-permutation search (`--no-permute`): each job
        /// synthesizes under its own output labeling. Incompatible with
        /// `--store` (records are canonical-class circuits) and disables
        /// the class cache.
        no_permute: bool,
        /// Synthesis configuration shared by every job (`--timeout` is
        /// enforced per job).
        config: SynthConfig,
    },
    /// `simulate <file.real> <bits>`.
    Simulate {
        /// Circuit file.
        path: String,
        /// Input assignment, e.g. `1011` (line 1 is the rightmost bit).
        input: String,
    },
    /// `cost <file.real>`.
    Cost {
        /// Circuit file.
        path: String,
    },
    /// `check <a.real> <b.real>`.
    Check {
        /// First circuit.
        a: String,
        /// Second circuit.
        b: String,
    },
    /// `spec <file.real>`.
    SpecOf {
        /// Circuit file.
        path: String,
    },
    /// `audit [files…] [--self-test]`.
    Audit {
        /// Files to audit, dispatched on extension: `.real` circuits,
        /// `.cnf`/`.dimacs` CNF formulas, `.qdimacs` QBF formulas.
        paths: Vec<String>,
        /// Also run the built-in self-test: every auditor family must
        /// accept a clean artifact and reject a seeded corruption.
        self_test: bool,
    },
    /// `serve <addr>`: run the synthesis daemon on a TCP address.
    Serve {
        /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port;
        /// the bound address is printed).
        addr: String,
        /// Persistent circuit database (`--store FILE`); omitted, the
        /// daemon serves from memory only.
        store: Option<String>,
        /// Warm-start target (`--preload <suite|dir|list>`, the `batch`
        /// target grammar): synthesized or store-loaded before the
        /// listener accepts connections.
        preload: Option<String>,
        /// Synthesis worker threads (`--jobs N`).
        jobs: usize,
        /// Cold-miss queue bound for admission control (`--queue N`).
        queue: usize,
        /// Run the full output-permutation search during `--preload`
        /// (`--preload-permute`); preload fills are plain synthesis by
        /// default.
        preload_permute: bool,
        /// Engine configuration for cold misses (single engine only).
        config: SynthConfig,
    },
    /// `query <addr> …`: one-shot client for a running daemon.
    Query {
        /// Daemon address.
        addr: String,
        /// What to ask.
        action: QueryAction,
    },
    /// `store verify|stats <file>`: offline circuit-database inspection.
    Store {
        /// Subcommand action.
        action: StoreAction,
        /// Database file path.
        path: String,
    },
    /// `list`.
    List,
    /// `help` (also `-h`, `--help`).
    Help,
}

/// Where the specification comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Source {
    /// A `.spec` file path.
    File(String),
    /// A built-in benchmark name.
    Benchmark(String),
}

/// What `qsyn query` asks a running daemon.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryAction {
    /// Synthesize a benchmark name or `.spec` file (resolved in that
    /// order), optionally labeled with `--name`.
    Synth {
        /// Benchmark name or spec file path.
        target: String,
        /// Job label (`--name`), defaulting to the benchmark name or the
        /// spec file stem.
        name: Option<String>,
    },
    /// `--stats`: counters and latency percentiles.
    Stats,
    /// `--ping`: liveness probe.
    Ping,
    /// `--shutdown`: ask the daemon to drain and exit.
    Shutdown,
}

/// What `qsyn store` does with a database file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreAction {
    /// Re-simulate every record against its specification and re-derive
    /// every digest; exit 0 only if the whole database checks out.
    Verify,
    /// Print record/byte counts and one line per stored circuit.
    Stats,
}

/// Decision-engine selection (`--engine bdd|qbf|sat|race`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineChoice {
    /// One fixed engine.
    Single(Engine),
    /// Portfolio race: all engines in parallel, first proof wins.
    Race,
}

impl std::fmt::Display for EngineChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineChoice::Single(e) => write!(f, "{e}"),
            EngineChoice::Race => write!(f, "race"),
        }
    }
}

/// Options accepted by `synth` / `bench` / `batch`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynthConfig {
    /// Decision engine (`--engine bdd|qbf|sat|race`).
    pub engine: EngineChoice,
    /// Gate library (`--library mct|mct+mcf|mct+p|all`).
    pub library: String,
    /// `--mixed-polarity`.
    pub mixed_polarity: bool,
    /// `--output-permutation`.
    pub output_permutation: bool,
    /// `--heuristic` — transformation-based synthesis (fast, non-minimal;
    /// completely specified functions only).
    pub heuristic: bool,
    /// `--max-depth N`.
    pub max_depth: u32,
    /// `--timeout SECS`.
    pub timeout: Option<u64>,
    /// `--all` — print every minimal circuit, not just the cheapest.
    pub all: bool,
    /// `--stats` — print BDD manager counters (live/peak nodes, GC runs,
    /// computed-table hit rate) after the run.
    pub stats: bool,
    /// `-o FILE` — write the best circuit to FILE instead of stdout.
    pub output: Option<String>,
    /// `--retries N` — extra attempts for budget-tripped jobs, with
    /// budgets doubling per retry.
    pub retries: u32,
    /// `--ladder e1,e2,…` — engines to degrade through on budget-trip
    /// retries (implies at least one retry per rung when `--retries` is
    /// not given).
    pub ladder: Vec<Engine>,
    /// `--fault-seed N` — arm the deterministic fault-injection plane
    /// (rejected unless the binary was built with `--features faults`).
    pub fault_seed: Option<u64>,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            engine: EngineChoice::Single(Engine::Bdd),
            library: "mct".to_string(),
            mixed_polarity: false,
            output_permutation: false,
            heuristic: false,
            max_depth: 32,
            timeout: None,
            all: false,
            stats: false,
            output: None,
            retries: 0,
            ladder: Vec::new(),
            fault_seed: None,
        }
    }
}

impl SynthConfig {
    /// Resolves the library flag.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown library names.
    pub fn gate_library(&self) -> Result<GateLibrary, String> {
        let base = match self.library.as_str() {
            "mct" => GateLibrary::mct(),
            "mct+mcf" => GateLibrary::mct_mcf(),
            "mct+p" => GateLibrary::mct_peres(),
            "all" | "mct+mcf+p" => GateLibrary::all(),
            other => return Err(format!("unknown library `{other}`")),
        };
        Ok(if self.mixed_polarity {
            base.with_mixed_polarity()
        } else {
            base
        })
    }

    /// Builds the engine options.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown library names.
    pub fn options(&self) -> Result<SynthesisOptions, String> {
        let engine = match self.engine {
            EngineChoice::Single(e) => e,
            // Placeholder: the race spawns one clone per engine and
            // overrides this field on each.
            EngineChoice::Race => Engine::Bdd,
        };
        let mut o =
            SynthesisOptions::new(self.gate_library()?, engine).with_max_depth(self.max_depth);
        if let Some(secs) = self.timeout {
            o = o.with_time_budget(Duration::from_secs(secs));
        }
        Ok(o)
    }

    /// The recovery plan implied by `--retries` / `--ladder`: budget
    /// trips escalate (budgets double per retry) and degrade down the
    /// ladder. `--ladder` without `--retries` grants one retry per rung.
    pub fn retry_policy(&self) -> RetryPolicy {
        let extra = if self.retries == 0 {
            u32::try_from(self.ladder.len()).unwrap_or(u32::MAX)
        } else {
            self.retries
        };
        if extra == 0 {
            RetryPolicy::none()
        } else {
            RetryPolicy::escalating(extra + 1, self.ladder.clone())
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
qsyn — exact synthesis of reversible logic (Wille et al., DATE 2008)

USAGE:
  qsyn synth <file.spec> [OPTIONS]     synthesize a truth-table specification
  qsyn bench <name> [OPTIONS]          synthesize a built-in benchmark
  qsyn batch <suite|dir|list> [OPTIONS]
                                       synthesize many specs on a worker pool
  qsyn simulate <file.real> <bits>     run a circuit on one input
  qsyn cost <file.real>                gate count and quantum cost
  qsyn check <a.real> <b.real>         equivalence check (with counterexample)
  qsyn spec <file.real>                truth table of a circuit
  qsyn audit [files...] [--self-test]  run the invariant auditors over
                                       .real/.cnf/.qdimacs files; --self-test
                                       seeds corruptions and checks every
                                       auditor family rejects them
  qsyn serve <addr> [OPTIONS]          run the synthesis daemon (newline-
                                       delimited JSON over TCP); repeats are
                                       answered from the circuit database
                                       without running an engine
  qsyn query <addr> <bench|file.spec> [--name N]
  qsyn query <addr> --stats|--ping|--shutdown
                                       one-shot client for a running daemon
  qsyn store verify|stats <file>       check or summarize a circuit database
  qsyn list                            list built-in benchmarks

OPTIONS (synth/bench/batch):
  --engine bdd|qbf|sat|race  decision engine; `race` runs all three in
                             parallel, first proof wins  [default: bdd]
  --library mct|mct+mcf|mct+p|all                        [default: mct]
  --mixed-polarity           allow negative-control Toffoli gates
  --output-permutation       allow free output-line relabeling
  --heuristic                transformation-based synthesis (fast, non-minimal)
  --max-depth N              depth cap                   [default: 32]
  --timeout SECS             wall-clock budget (per job under `batch`)
  --all                      print every minimal circuit
  --stats                    print BDD manager counters (nodes, GC, cache)
  -o FILE                    write the cheapest circuit to FILE
  --retries N                extra attempts for budget-tripped jobs;
                             budgets double per retry     [default: 0]
  --ladder e1[,e2...]        engines to degrade through on budget-trip
                             retries, e.g. `--ladder sat` (grants one
                             retry per rung if --retries is not given)
  --fault-seed N             arm the deterministic fault-injection plane
                             (builds with `--features faults` only)

OPTIONS (batch only):
  --jobs N                   worker threads              [default: 1]
  --no-cache                 disable the canonical-spec result cache
  --journal FILE             append each completed job to FILE (fsync'd
                             JSONL), enabling crash-safe resume
  --resume                   skip jobs already recorded in --journal,
                             replaying their rows from the journal
  --store FILE               persistent circuit database: jobs whose
                             equivalence class is stored replay the record
                             without an engine; fresh results are appended
  --no-permute               plain synthesis per job (skip the output-
                             permutation search); disables the class cache
                             and cannot be combined with --store

  `batch` targets: the literal `suite` (built-in benchmarks), a directory
  of `.spec` files, or a text file with one benchmark name or spec path
  per line. Batch jobs synthesize with free output permutation by default,
  so equivalent specs share one cache entry; `--no-permute` opts a run out
  of the search (and the sharing) entirely.

OPTIONS (serve only):
  --store FILE               persistent circuit database (crash-safe,
                             append-only; reopened state is served as hits)
  --preload <suite|dir|list> warm the index before accepting connections
                             (batch target grammar); preload fills run
                             plain synthesis of each canonical spec
  --preload-permute          run the full output-permutation search during
                             --preload (slower, class-minimal depths)
  --jobs N                   synthesis worker threads    [default: 2]
  --queue N                  cold-miss queue bound; a full queue bounces
                             requests as retryable       [default: 64]
  --stats                    print final counters on shutdown

  `serve` also accepts `--engine bdd|qbf|sat`, `--library`,
  `--mixed-polarity`, `--max-depth` and `--timeout` (the per-request
  wall-clock budget). Interactive daemon answers always allow free output
  relabeling, like `batch`.
";

impl Command {
    /// Parses a command line (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown subcommands, unknown
    /// flags or missing arguments.
    pub fn parse<I, S>(args: I) -> Result<Command, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = args.into_iter().map(Into::into);
        let sub = match args.next() {
            None => return Ok(Command::Help),
            Some(s) => s,
        };
        match sub.as_str() {
            "help" | "-h" | "--help" => Ok(Command::Help),
            "list" => Ok(Command::List),
            "simulate" => {
                let path = args.next().ok_or("simulate: missing circuit file")?;
                let input = args.next().ok_or("simulate: missing input bits")?;
                reject_extra(args)?;
                Ok(Command::Simulate { path, input })
            }
            "cost" => {
                let path = args.next().ok_or("cost: missing circuit file")?;
                reject_extra(args)?;
                Ok(Command::Cost { path })
            }
            "check" => {
                let a = args.next().ok_or("check: missing first circuit")?;
                let b = args.next().ok_or("check: missing second circuit")?;
                reject_extra(args)?;
                Ok(Command::Check { a, b })
            }
            "spec" => {
                let path = args.next().ok_or("spec: missing circuit file")?;
                reject_extra(args)?;
                Ok(Command::SpecOf { path })
            }
            "audit" => {
                let mut paths = Vec::new();
                let mut self_test = false;
                for arg in args {
                    match arg.as_str() {
                        "--self-test" => self_test = true,
                        flag if flag.starts_with('-') => {
                            return Err(format!("unknown option `{flag}`"))
                        }
                        _ => paths.push(arg),
                    }
                }
                if paths.is_empty() && !self_test {
                    return Err("audit: nothing to do (give files or --self-test)".to_string());
                }
                Ok(Command::Audit { paths, self_test })
            }
            "synth" | "bench" => {
                let target = args
                    .next()
                    .ok_or_else(|| format!("{sub}: missing specification"))?;
                let source = if sub == "synth" {
                    Source::File(target)
                } else {
                    Source::Benchmark(target)
                };
                let mut config = SynthConfig::default();
                while let Some(flag) = args.next() {
                    if !parse_synth_flag(&flag, &mut args, &mut config)? {
                        return Err(format!("unknown option `{flag}`"));
                    }
                }
                Ok(Command::Synth { source, config })
            }
            "batch" => {
                let target = args.next().ok_or("batch: missing target")?;
                let mut config = SynthConfig::default();
                let mut jobs = 1usize;
                let mut no_cache = false;
                let mut journal = None;
                let mut resume = false;
                let mut store = None;
                let mut no_permute = false;
                while let Some(flag) = args.next() {
                    match flag.as_str() {
                        "--no-permute" => no_permute = true,
                        "--jobs" => {
                            let v = args.next().ok_or("--jobs needs a value")?;
                            jobs = v.parse().map_err(|_| format!("bad job count `{v}`"))?;
                            if jobs == 0 {
                                return Err("--jobs must be at least 1".to_string());
                            }
                        }
                        "--no-cache" => no_cache = true,
                        "--journal" => {
                            journal = Some(args.next().ok_or("--journal needs a file")?);
                        }
                        "--resume" => resume = true,
                        "--store" => {
                            store = Some(args.next().ok_or("--store needs a file")?);
                        }
                        _ => {
                            if !parse_synth_flag(&flag, &mut args, &mut config)? {
                                return Err(format!("unknown option `{flag}`"));
                            }
                        }
                    }
                }
                if resume && journal.is_none() {
                    return Err("--resume requires --journal".to_string());
                }
                if no_permute && store.is_some() {
                    return Err(
                        "--no-permute results depend on each job's output labeling, but \
                         --store records one canonical circuit per permutation class; \
                         storing labeling-specific answers would corrupt later replays. \
                         Drop --no-permute or --store"
                            .to_string(),
                    );
                }
                Ok(Command::Batch {
                    target,
                    jobs,
                    no_cache,
                    journal,
                    resume,
                    store,
                    no_permute,
                    config,
                })
            }
            "serve" => {
                let addr = args.next().ok_or("serve: missing bind address")?;
                let mut config = SynthConfig::default();
                let mut store = None;
                let mut preload = None;
                let mut jobs = 2usize;
                let mut queue = 64usize;
                let mut preload_permute = false;
                while let Some(flag) = args.next() {
                    match flag.as_str() {
                        "--preload-permute" => preload_permute = true,
                        "--store" => {
                            store = Some(args.next().ok_or("--store needs a file")?);
                        }
                        "--preload" => {
                            preload = Some(args.next().ok_or("--preload needs a target")?);
                        }
                        "--jobs" => {
                            let v = args.next().ok_or("--jobs needs a value")?;
                            jobs = v.parse().map_err(|_| format!("bad job count `{v}`"))?;
                            if jobs == 0 {
                                return Err("--jobs must be at least 1".to_string());
                            }
                        }
                        "--queue" => {
                            let v = args.next().ok_or("--queue needs a value")?;
                            queue = v.parse().map_err(|_| format!("bad queue bound `{v}`"))?;
                            if queue == 0 {
                                return Err("--queue must be at least 1".to_string());
                            }
                        }
                        _ => {
                            if !parse_synth_flag(&flag, &mut args, &mut config)? {
                                return Err(format!("unknown option `{flag}`"));
                            }
                        }
                    }
                }
                if config.engine == EngineChoice::Race {
                    return Err("serve: --engine race is not supported; pick one engine".into());
                }
                for (set, flag) in [
                    (config.all, "--all"),
                    (config.output.is_some(), "-o"),
                    (config.heuristic, "--heuristic"),
                    (config.retries != 0, "--retries"),
                    (!config.ladder.is_empty(), "--ladder"),
                    (config.fault_seed.is_some(), "--fault-seed"),
                ] {
                    if set {
                        return Err(format!("serve does not take {flag}"));
                    }
                }
                if preload_permute && preload.is_none() {
                    return Err("--preload-permute requires --preload".to_string());
                }
                Ok(Command::Serve {
                    addr,
                    store,
                    preload,
                    jobs,
                    queue,
                    preload_permute,
                    config,
                })
            }
            "query" => {
                let addr = args.next().ok_or("query: missing daemon address")?;
                let mut target = None;
                let mut name = None;
                let mut verb: Option<QueryAction> = None;
                while let Some(arg) = args.next() {
                    match arg.as_str() {
                        "--stats" => verb = Some(QueryAction::Stats),
                        "--ping" => verb = Some(QueryAction::Ping),
                        "--shutdown" => verb = Some(QueryAction::Shutdown),
                        "--name" => {
                            name = Some(args.next().ok_or("--name needs a value")?);
                        }
                        flag if flag.starts_with('-') => {
                            return Err(format!("unknown option `{flag}`"))
                        }
                        _ => {
                            if target.is_none() {
                                target = Some(arg);
                            } else {
                                return Err(format!("unexpected argument `{arg}`"));
                            }
                        }
                    }
                }
                let action =
                    match (target, verb) {
                        (Some(target), None) => QueryAction::Synth { target, name },
                        (None, Some(v)) => {
                            if name.is_some() {
                                return Err("--name only applies to synthesis queries".to_string());
                            }
                            v
                        }
                        (Some(_), Some(_)) => {
                            return Err(
                                "query takes a target or --stats/--ping/--shutdown, not both"
                                    .to_string(),
                            )
                        }
                        (None, None) => return Err(
                            "query: nothing to ask (give a target or --stats/--ping/--shutdown)"
                                .to_string(),
                        ),
                    };
                Ok(Command::Query { addr, action })
            }
            "store" => {
                let action = match args.next().as_deref() {
                    Some("verify") => StoreAction::Verify,
                    Some("stats") => StoreAction::Stats,
                    Some(other) => {
                        return Err(format!("store: unknown action `{other}` (verify|stats)"))
                    }
                    None => return Err("store: missing action (verify|stats)".to_string()),
                };
                let path = args.next().ok_or("store: missing database file")?;
                reject_extra(args)?;
                Ok(Command::Store { action, path })
            }
            other => Err(format!("unknown command `{other}` (try `qsyn help`)")),
        }
    }
}

/// Applies one `synth`/`bench`/`batch` option to `config`. Returns
/// `Ok(false)` when the flag is not a synthesis option (so callers can
/// layer their own flags on top), `Err` on a malformed value.
fn parse_synth_flag<I>(flag: &str, args: &mut I, config: &mut SynthConfig) -> Result<bool, String>
where
    I: Iterator<Item = String>,
{
    match flag {
        "--engine" => {
            let v = args.next().ok_or("--engine needs a value")?;
            config.engine = match v.as_str() {
                "race" => EngineChoice::Race,
                name => EngineChoice::Single(parse_engine_name(name)?),
            };
        }
        "--library" => {
            config.library = args.next().ok_or("--library needs a value")?;
        }
        "--mixed-polarity" => config.mixed_polarity = true,
        "--output-permutation" => config.output_permutation = true,
        "--heuristic" => config.heuristic = true,
        "--max-depth" => {
            let v = args.next().ok_or("--max-depth needs a value")?;
            config.max_depth = v.parse().map_err(|_| format!("bad depth `{v}`"))?;
        }
        "--timeout" => {
            let v = args.next().ok_or("--timeout needs a value")?;
            config.timeout = Some(v.parse().map_err(|_| format!("bad timeout `{v}`"))?);
        }
        "--all" => config.all = true,
        "--stats" => config.stats = true,
        "-o" | "--output" => {
            config.output = Some(args.next().ok_or("-o needs a file")?);
        }
        "--retries" => {
            let v = args.next().ok_or("--retries needs a value")?;
            config.retries = v.parse().map_err(|_| format!("bad retry count `{v}`"))?;
        }
        "--ladder" => {
            let v = args.next().ok_or("--ladder needs engine names")?;
            config.ladder = v
                .split(',')
                .map(|name| parse_engine_name(name.trim()))
                .collect::<Result<Vec<_>, _>>()?;
            if config.ladder.is_empty() {
                return Err("--ladder needs at least one engine".to_string());
            }
        }
        "--fault-seed" => {
            let v = args.next().ok_or("--fault-seed needs a value")?;
            config.fault_seed = Some(v.parse().map_err(|_| format!("bad fault seed `{v}`"))?);
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Parses a single (non-race) engine name.
fn parse_engine_name(name: &str) -> Result<Engine, String> {
    match name {
        "bdd" => Ok(Engine::Bdd),
        "qbf" => Ok(Engine::Qbf),
        "sat" => Ok(Engine::Sat),
        other => Err(format!("unknown engine `{other}`")),
    }
}

fn reject_extra<I: Iterator<Item = String>>(mut args: I) -> Result<(), String> {
    match args.next() {
        Some(extra) => Err(format!("unexpected argument `{extra}`")),
        None => Ok(()),
    }
}

/// Executes a parsed command, writing human-readable output to `out`.
/// Returns the process exit code.
///
/// # Errors
///
/// I/O failures on `out` are surfaced as `Err`.
pub fn run(cmd: &Command, out: &mut dyn std::io::Write) -> std::io::Result<i32> {
    match cmd {
        Command::Help => {
            write!(out, "{USAGE}")?;
            Ok(0)
        }
        Command::List => {
            for b in benchmarks::suite() {
                writeln!(
                    out,
                    "{:<12} {} lines, {}",
                    b.name,
                    b.spec.lines(),
                    match b.kind {
                        benchmarks::BenchmarkKind::Complete => "completely specified",
                        benchmarks::BenchmarkKind::Incomplete => "incompletely specified",
                    }
                )?;
            }
            Ok(0)
        }
        Command::Simulate { path, input } => {
            let circuit = match load_circuit(path) {
                Ok(c) => c,
                Err(e) => return fail(out, &e),
            };
            let n = circuit.lines();
            if input.len() != n as usize || !input.chars().all(|c| c == '0' || c == '1') {
                return fail(out, &format!("input must be {n} binary digits"));
            }
            // Leftmost digit = highest line, consistent with .spec files.
            let mut bits = 0u32;
            for (i, ch) in input.chars().enumerate() {
                if ch == '1' {
                    bits |= 1 << (n as usize - 1 - i);
                }
            }
            let result = circuit.simulate(bits);
            let rendered: String = (0..n)
                .rev()
                .map(|l| if (result >> l) & 1 == 1 { '1' } else { '0' })
                .collect();
            writeln!(out, "{input} -> {rendered}")?;
            Ok(0)
        }
        Command::Cost { path } => {
            let circuit = match load_circuit(path) {
                Ok(c) => c,
                Err(e) => return fail(out, &e),
            };
            let (mct, mcf, peres) = circuit.gate_counts();
            writeln!(out, "lines:        {}", circuit.lines())?;
            writeln!(
                out,
                "gates:        {} (MCT {mct}, MCF {mcf}, Peres {peres})",
                circuit.len()
            )?;
            writeln!(out, "quantum cost: {}", cost::circuit_cost(&circuit))?;
            writeln!(
                out,
                "NCV network:  {} elementary gates (zero-ancilla decomposition)",
                qsyn_revlogic::ncv::network_cost(&circuit)
            )?;
            Ok(0)
        }
        Command::Check { a, b } => {
            let (ca, cb) = match (load_circuit(a), load_circuit(b)) {
                (Ok(x), Ok(y)) => (x, y),
                (Err(e), _) | (_, Err(e)) => return fail(out, &e),
            };
            if ca.lines() != cb.lines() {
                return fail(out, "circuits have different line counts");
            }
            match equivalence::counterexample_sat(&ca, &cb) {
                None => {
                    debug_assert!(equivalence::equivalent_bdd(&ca, &cb));
                    writeln!(out, "EQUIVALENT")?;
                    Ok(0)
                }
                Some(cex) => {
                    let n = ca.lines();
                    let render = |v: u32| -> String {
                        (0..n)
                            .rev()
                            .map(|l| if (v >> l) & 1 == 1 { '1' } else { '0' })
                            .collect()
                    };
                    writeln!(out, "NOT EQUIVALENT")?;
                    writeln!(
                        out,
                        "counterexample: input {} -> {} vs {}",
                        render(cex),
                        render(ca.simulate(cex)),
                        render(cb.simulate(cex))
                    )?;
                    Ok(1)
                }
            }
        }
        Command::SpecOf { path } => {
            let circuit = match load_circuit(path) {
                Ok(c) => c,
                Err(e) => return fail(out, &e),
            };
            let spec = Spec::from_permutation(&circuit.permutation());
            write!(out, "{}", spec_format::write_spec(&spec))?;
            Ok(0)
        }
        Command::Audit { paths, self_test } => run_audit(paths, *self_test, out),
        Command::Synth { source, config } => run_synth(source, config, out),
        Command::Batch {
            target,
            jobs,
            no_cache,
            journal,
            resume,
            store,
            no_permute,
            config,
        } => run_batch_command(
            target,
            *jobs,
            *no_cache,
            journal.as_deref(),
            *resume,
            store.as_deref(),
            *no_permute,
            config,
            out,
        ),
        Command::Serve {
            addr,
            store,
            preload,
            jobs,
            queue,
            preload_permute,
            config,
        } => run_serve(
            addr,
            store.as_deref(),
            preload.as_deref().map(|target| (target, *preload_permute)),
            *jobs,
            *queue,
            config,
            out,
        ),
        Command::Query { addr, action } => run_query(addr, action, out),
        Command::Store { action, path } => run_store_command(*action, path, out),
    }
}

/// Runs a parse-and-audit closure, converting both parse errors and
/// parser panics into a message. The gate and quantifier-prefix
/// constructors assert their invariants (`target cannot be a control`,
/// `variable already quantified`), so a corrupt file must not unwind out
/// of the CLI with exit 101 — it is an input problem, exit 2.
fn parse_guarded<F>(f: F) -> Result<Result<(), crate::audit::AuditError>, String>
where
    F: FnOnce() -> Result<Result<(), crate::audit::AuditError>, String> + std::panic::UnwindSafe,
{
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(f);
    std::panic::set_hook(prev);
    match result {
        Ok(r) => r,
        Err(payload) => Err(payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "malformed input".to_string())),
    }
}

/// Executes `qsyn audit`: optional self-test, then one auditor run per
/// file (dispatched on extension). Exit code 0 = everything clean,
/// 1 = at least one violation, 2 = unreadable/unparsable input.
fn run_audit(
    paths: &[String],
    self_test: bool,
    out: &mut dyn std::io::Write,
) -> std::io::Result<i32> {
    let mut code = 0;
    if self_test {
        match crate::audit::self_test() {
            Ok(report) => writeln!(out, "self-test: {report}")?,
            Err(msg) => return fail(out, &format!("self-test failed: {msg}")),
        }
    }
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(out, &format!("{path}: {e}")),
        };
        let ext = std::path::Path::new(path)
            .extension()
            .map(|e| e.to_string_lossy().into_owned())
            .unwrap_or_default();
        let outcome = match ext.as_str() {
            "real" => parse_guarded(|| {
                real::parse_real(&text)
                    .map_err(|e| e.to_string())
                    .map(|c| crate::audit::circuit_audit::audit_circuit(&c, None))
            }),
            "cnf" | "dimacs" => parse_guarded(|| {
                crate::sat::dimacs::parse_dimacs(&text)
                    .map_err(|e| e.to_string())
                    .map(|f| crate::audit::formula_audit::audit_cnf(&f))
            }),
            // QDIMACS treats unbound variables as outermost-existential,
            // so closure is not required of files.
            "qdimacs" => parse_guarded(|| {
                crate::qbf::qdimacs::parse_qdimacs(&text)
                    .map_err(|e| e.to_string())
                    .map(|q| crate::audit::formula_audit::audit_qbf(&q, false))
            }),
            other => {
                return fail(
                    out,
                    &format!("{path}: unsupported extension `{other}` (want .real/.cnf/.qdimacs)"),
                )
            }
        };
        let outcome = match outcome {
            Ok(o) => o,
            Err(msg) => return fail(out, &format!("{path}: {msg}")),
        };
        match outcome {
            Ok(()) => writeln!(out, "{path}: ok")?,
            Err(e) => {
                code = 1;
                writeln!(out, "{path}: {e}")?;
            }
        }
    }
    Ok(code)
}

fn run_synth(
    source: &Source,
    config: &SynthConfig,
    out: &mut dyn std::io::Write,
) -> std::io::Result<i32> {
    let spec = match source {
        Source::File(path) => match std::fs::read_to_string(path) {
            Ok(text) => match spec_format::parse_spec(&text) {
                Ok(s) => s,
                Err(e) => return fail(out, &e.to_string()),
            },
            Err(e) => return fail(out, &format!("{path}: {e}")),
        },
        Source::Benchmark(name) => match benchmarks::by_name(name) {
            Some(b) => b.spec,
            None => {
                return fail(
                    out,
                    &format!("unknown benchmark `{name}` (see `qsyn list`)"),
                )
            }
        },
    };
    let options = match config.options() {
        Ok(o) => o,
        Err(e) => return fail(out, &e),
    };
    if config.heuristic {
        let Some(perm) = spec.as_permutation() else {
            return fail(
                out,
                "--heuristic requires a completely specified (bijective) function",
            );
        };
        let circuit = crate::synth::transform::transformation_synthesis(&perm);
        writeln!(
            out,
            "heuristic realization: {} gates, quantum cost {} (no minimality guarantee)",
            circuit.len(),
            cost::circuit_cost(&circuit)
        )?;
        if let Some(path) = &config.output {
            std::fs::write(path, real::write_real(&circuit))?;
            writeln!(out, "wrote {path}")?;
        } else {
            write!(out, "{}", real::write_real(&circuit))?;
        }
        return Ok(0);
    }
    let _faults = match FaultArming::from_config(config) {
        Ok(g) => g,
        Err(msg) => return fail(out, &msg),
    };
    let race = config.engine == EngineChoice::Race;
    let policy = config.retry_policy();
    if config.output_permutation {
        // The ladder's engine override turns a raced attempt into a
        // single-engine one: degradation narrows the portfolio.
        let outcome = run_with_retry(&policy, |attempt| {
            let opts = apply_attempt(&options, attempt);
            if race && attempt.engine.is_none() {
                race_engines_permuted(&spec, &opts)
                    .map(|r| (r.winner, Some(r.winner_label)))
                    .map_err(|e| e.into_synthesis_error())
            } else {
                permuted::synthesize_with_output_permutation(&spec, &opts).map(|p| (p, None))
            }
        });
        let recovery = recovery_note(&outcome);
        match outcome.result {
            Err(e) => fail(out, &e.to_string()),
            Ok((p, winner)) => {
                writeln!(
                    out,
                    "minimal gates: {} (output permutation {:?}), {} solutions, {:?}{}",
                    p.result.depth(),
                    p.permutation,
                    p.result.solutions().count_display(),
                    p.result.total_time(),
                    race_note(winner.as_deref())
                )?;
                if let Some(note) = recovery {
                    writeln!(out, "{note}")?;
                }
                emit_stats(&p.result, config, out)?;
                emit_circuits(&p.result, config, out)
            }
        }
    } else {
        let outcome = run_with_retry(&policy, |attempt| {
            let opts = apply_attempt(&options, attempt);
            if race && attempt.engine.is_none() {
                race_engines(&spec, &opts)
                    .map(|r| (r.winner, Some(r.winner_label)))
                    .map_err(|e| e.into_synthesis_error())
            } else {
                synthesize(&spec, &opts).map(|r| (r, None))
            }
        });
        let recovery = recovery_note(&outcome);
        match outcome.result {
            Err(e) => fail(out, &e.to_string()),
            Ok((r, winner)) => {
                let (lo, hi) = r.solutions().quantum_cost_range();
                writeln!(
                    out,
                    "minimal gates: {}, {} solutions, quantum cost {lo}..{hi}, {:?} ({} engine){}",
                    r.depth(),
                    r.solutions().count_display(),
                    r.total_time(),
                    r.engine(),
                    race_note(winner.as_deref())
                )?;
                if let Some(note) = recovery {
                    writeln!(out, "{note}")?;
                }
                emit_stats(&r, config, out)?;
                emit_circuits(&r, config, out)
            }
        }
    }
}

/// Applies a retry [`Attempt`] to the configured options: the ladder's
/// engine override plus the compound budget escalation over the node,
/// conflict and wall-clock limits.
fn apply_attempt(options: &SynthesisOptions, attempt: &Attempt) -> SynthesisOptions {
    let mut o = options.clone();
    if let Some(engine) = attempt.engine {
        o = o.with_engine(engine);
    }
    if attempt.budget_scale > 1.0 {
        let nodes = attempt.scale_budget(o.bdd_node_limit as u64);
        let conflicts = attempt.scale_budget(o.conflict_limit);
        o = o
            .with_bdd_node_limit(usize::try_from(nodes).unwrap_or(usize::MAX))
            .with_conflict_limit(conflicts);
        if let Some(budget) = o.time_budget {
            o = o.with_time_budget(attempt.scale_duration(budget));
        }
    }
    o
}

/// One line describing a recovered (multi-attempt) run, `None` for a
/// clean first-attempt success or failure.
fn recovery_note<R>(outcome: &crate::synth::RetryOutcome<R>) -> Option<String> {
    if !outcome.degraded() {
        return None;
    }
    Some(format!(
        "recovered after {} attempts{}",
        outcome.attempts,
        ladder_note(&outcome.ladder_path)
    ))
}

/// `", via sat"` — the engines a degraded job was routed through.
fn ladder_note(path: &[Engine]) -> String {
    if path.is_empty() {
        return String::new();
    }
    let names: Vec<String> = path.iter().map(ToString::to_string).collect();
    format!(", via {}", names.join(" -> "))
}

/// RAII arming of the fault-injection plane from `--fault-seed`:
/// rejected on builds without the plane compiled in, disarmed when the
/// command finishes (so in-process callers — tests — are not poisoned).
struct FaultArming(bool);

impl FaultArming {
    /// Whether this guard actually armed the fault plane.
    fn armed(&self) -> bool {
        self.0
    }

    fn from_config(config: &SynthConfig) -> Result<FaultArming, String> {
        match config.fault_seed {
            None => Ok(FaultArming(false)),
            Some(seed) => {
                if !qsyn_faults::FaultPlane::compiled_in() {
                    return Err(
                        "--fault-seed requires a binary built with `--features faults`".to_string(),
                    );
                }
                qsyn_faults::FaultPlane::arm(seed);
                Ok(FaultArming(true))
            }
        }
    }
}

impl Drop for FaultArming {
    fn drop(&mut self) {
        if self.0 {
            qsyn_faults::FaultPlane::disarm();
        }
    }
}

fn emit_stats(
    result: &crate::synth::SynthesisResult,
    config: &SynthConfig,
    out: &mut dyn std::io::Write,
) -> std::io::Result<()> {
    if config.stats {
        match result.bdd_stats() {
            Some(s) => writeln!(out, "bdd: {s}")?,
            None => writeln!(
                out,
                "bdd: n/a ({} engine has no BDD manager)",
                result.engine()
            )?,
        }
    }
    Ok(())
}

fn race_note(winner: Option<&str>) -> String {
    match winner {
        Some(label) => format!(" [race winner: {label}]"),
        None => String::new(),
    }
}

/// Resolves a `batch` target into named specifications, in a stable order.
fn batch_jobs(target: &str) -> Result<Vec<(String, Spec)>, String> {
    if target == "suite" {
        return Ok(benchmarks::suite()
            .into_iter()
            .map(|b| (b.name.to_string(), b.spec))
            .collect());
    }
    let path = std::path::Path::new(target);
    if path.is_dir() {
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{target}: {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "spec"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("{target}: no .spec files found"));
        }
        return files
            .into_iter()
            .map(|p| {
                let name = p.file_stem().map_or_else(
                    || p.display().to_string(),
                    |s| s.to_string_lossy().into_owned(),
                );
                let text =
                    std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
                let spec =
                    spec_format::parse_spec(&text).map_err(|e| format!("{}: {e}", p.display()))?;
                Ok((name, spec))
            })
            .collect();
    }
    // A list file: one benchmark name or .spec path per line.
    let text = std::fs::read_to_string(path).map_err(|e| format!("{target}: {e}"))?;
    let mut jobs = Vec::new();
    for line in text.lines() {
        let entry = line.trim();
        if entry.is_empty() || entry.starts_with('#') {
            continue;
        }
        if let Some(b) = benchmarks::by_name(entry) {
            jobs.push((entry.to_string(), b.spec));
        } else {
            let text = std::fs::read_to_string(entry).map_err(|_| {
                format!("`{entry}` is neither a benchmark name nor a readable spec file")
            })?;
            let spec = spec_format::parse_spec(&text).map_err(|e| format!("{entry}: {e}"))?;
            let name = std::path::Path::new(entry)
                .file_stem()
                .map_or_else(|| entry.to_string(), |s| s.to_string_lossy().into_owned());
            jobs.push((name, spec));
        }
    }
    if jobs.is_empty() {
        return Err(format!("{target}: no jobs"));
    }
    Ok(jobs)
}

/// One scheduled batch job: its input position, name and specification,
/// plus the precomputed journal key.
struct BatchJob {
    name: String,
    spec: Spec,
    key: String,
}

/// Builds the journal record for a completed job.
fn journal_record(job: &BatchJob, p: &PermutedSynthesisResult, elapsed: Duration) -> JournalRecord {
    JournalRecord {
        key: job.key.clone(),
        name: job.name.clone(),
        depth: p.result.depth(),
        solutions: p.result.solutions().count_display(),
        permutation: format!("{:?}", p.permutation),
        elapsed_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
        digest: result_digest(p),
    }
}

/// FNV-1a digest over a result's semantic content — depth, solution
/// count, output permutation and the cheapest circuit. The chaos harness
/// compares these across fault schedules; wall-clock time is excluded.
fn result_digest(p: &PermutedSynthesisResult) -> String {
    let mut h = Fnv1a::new();
    h.write_u32(p.result.depth());
    h.write(p.result.solutions().count_display().as_bytes());
    h.write(format!("{:?}", p.permutation).as_bytes());
    h.write(real::write_real(p.result.solutions().best_by_quantum_cost()).as_bytes());
    format!("{:016x}", h.finish())
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn run_batch_command(
    target: &str,
    jobs: usize,
    no_cache: bool,
    journal: Option<&str>,
    resume: bool,
    store_path: Option<&str>,
    no_permute: bool,
    config: &SynthConfig,
    out: &mut dyn std::io::Write,
) -> std::io::Result<i32> {
    if let Some(message) = store_library_conflict(config) {
        // Store records are keyed by canonical spec alone; replaying an
        // mct-minimal circuit into a run that asked for another gate
        // library would answer with out-of-library gates or a wrong
        // minimum. Key-per-library is a ROADMAP item. Refusing up front
        // (with the offending flag named) beats the old behaviour of a
        // generic refusal — and far beats silently dropping records.
        if store_path.is_some() {
            return fail(out, &message);
        }
    }
    let work = match batch_jobs(target) {
        Ok(w) => w,
        Err(e) => return fail(out, &e),
    };
    let options = match config.options() {
        Ok(o) => o,
        Err(e) => return fail(out, &e),
    };
    let _faults = match FaultArming::from_config(config) {
        Ok(g) => g,
        Err(e) => return fail(out, &e),
    };
    let engine = config.engine;
    let cache = if no_cache || no_permute {
        // The cache is keyed by permutation class; a --no-permute answer
        // is specific to its job's output labeling, so sharing it across
        // the class would hand class members a wrongly-labeled circuit.
        None
    } else {
        Some(SpecCache::new())
    };
    // The persistent circuit database sits below the in-memory cache:
    // only a class the cache has not seen this run consults the store,
    // and only an engine-computed result is appended.
    let store = match store_path {
        Some(path) => match Store::open(std::path::Path::new(path)) {
            Ok(s) => Some(Mutex::new(s)),
            Err(e) => return fail(out, &format!("{path}: {e}")),
        },
        None => None,
    };
    let store_report = StoreReport::default();
    let batch_config = BatchConfig {
        workers: jobs,
        per_job_timeout: config.timeout.map(Duration::from_secs),
        retry: config.retry_policy(),
    };

    // Journal bookkeeping: with --resume, jobs whose key is already
    // recorded are replayed from the journal instead of re-run; with
    // --journal, every completion is appended (fsync'd) as it lands.
    let journal_path = journal.map(std::path::PathBuf::from);
    let mut completed: HashMap<String, JournalRecord> = HashMap::new();
    if resume {
        let path = journal_path.as_ref().expect("--resume requires --journal");
        match read_journal(path) {
            Ok(records) => {
                for r in records {
                    completed.insert(r.key.clone(), r);
                }
            }
            Err(e) => return fail(out, &format!("{}: {e}", path.display())),
        }
    }
    let writer = match &journal_path {
        Some(path) => match JournalWriter::open(path) {
            Ok(w) => Some(Mutex::new(w)),
            Err(e) => return fail(out, &format!("{}: {e}", path.display())),
        },
        None => None,
    };
    let journal_error: Mutex<Option<std::io::Error>> = Mutex::new(None);

    // Split the batch: `None` rows are filled from this run's reports,
    // in order; `Some` rows replay a journaled completion.
    let mut rows: Vec<Option<JournalRecord>> = Vec::with_capacity(work.len());
    let mut to_run: Vec<(String, BatchJob)> = Vec::new();
    for (index, (name, spec)) in work.into_iter().enumerate() {
        let key = job_key(index, &name, &spec);
        if let Some(rec) = completed.get(&key) {
            rows.push(Some(rec.clone()));
        } else {
            rows.push(None);
            to_run.push((name.clone(), BatchJob { name, spec, key }));
        }
    }
    let total_jobs = rows.len();

    // Every batch job synthesizes with free output permutation: the answer
    // is minimal over the whole output-permutation class, so a cache hit
    // (which reuses the class representative's result) reports the same
    // depth a cache miss would.
    let run_one = |job: &BatchJob,
                   token: &CancelToken,
                   session: &mut SynthesisSession,
                   attempt: &Attempt|
     -> Result<PermutedSynthesisResult, SynthesisError> {
        let opts = apply_attempt(&options, attempt).with_cancel_token(token.clone());
        let job_started = Instant::now();
        // The ladder's engine override degrades a raced job to the one
        // named engine; undegraded attempts keep the configured choice.
        let mut engine_compute = |s: &Spec| {
            let race = engine == EngineChoice::Race && attempt.engine.is_none();
            match (no_permute, race) {
                (true, true) => race_engines(s, &opts)
                    .map(|r| PermutedSynthesisResult::plain(r.winner, s.lines()))
                    .map_err(|e| e.into_synthesis_error()),
                (true, false) => crate::synth::synthesize_in(s, &opts, session)
                    .map(|r| PermutedSynthesisResult::plain(r, s.lines())),
                (false, true) => race_engines_permuted(s, &opts)
                    .map(|r| r.winner)
                    .map_err(|e| e.into_synthesis_error()),
                (false, false) => {
                    permuted::synthesize_with_output_permutation_in(s, &opts, session)
                }
            }
        };
        let compute = |s: &Spec| match &store {
            Some(db) => store_or_compute(db, s, &job.name, &store_report, engine_compute),
            None => engine_compute(s),
        };
        let result = match &cache {
            Some(c) => c.get_or_compute(&job.spec, compute),
            None => compute(&job.spec),
        };
        // Journal the completion before reporting it, from inside the
        // worker: a kill between jobs then loses nothing.
        if let (Ok(p), Some(w)) = (&result, &writer) {
            let record = journal_record(job, p, job_started.elapsed());
            if let Err(e) = w.lock().expect("journal lock").append(&record) {
                journal_error
                    .lock()
                    .expect("journal error lock")
                    .get_or_insert(e);
            }
        }
        result
    };
    let started = Instant::now();
    let outcome = run_batch(to_run, &batch_config, None, run_one);
    let total = started.elapsed();

    writeln!(
        out,
        "{:<12} {:>5} {:>9} {:<14} {:>9}  status",
        "name", "gates", "solutions", "permutation", "time"
    )?;
    let mut failed = 0usize;
    let mut fresh = outcome.reports.into_iter();
    for row in rows {
        if let Some(rec) = row {
            // A replayed job prints exactly like the original completion
            // (including its recorded wall-clock time), so a resumed
            // batch merges into the same report the unkilled run prints.
            writeln!(
                out,
                "{:<12} {:>5} {:>9} {:<14} {:>8.1?}  ok",
                rec.name,
                rec.depth,
                rec.solutions,
                rec.permutation,
                Duration::from_nanos(rec.elapsed_ns)
            )?;
            continue;
        }
        let r = fresh.next().expect("one report per scheduled job");
        match &r.status {
            JobStatus::Done(p) => writeln!(
                out,
                "{:<12} {:>5} {:>9} {:<14} {:>8.1?}  ok",
                r.name,
                p.result.depth(),
                p.result.solutions().count_display(),
                format!("{:?}", p.permutation),
                r.elapsed
            )?,
            JobStatus::Degraded {
                result: p,
                attempts,
                ladder_path,
            } => writeln!(
                out,
                "{:<12} {:>5} {:>9} {:<14} {:>8.1?}  ok (recovered: {} attempts{})",
                r.name,
                p.result.depth(),
                p.result.solutions().count_display(),
                format!("{:?}", p.permutation),
                r.elapsed,
                attempts,
                ladder_note(ladder_path)
            )?,
            JobStatus::Failed(e) => {
                failed += 1;
                writeln!(
                    out,
                    "{:<12} {:>5} {:>9} {:<14} {:>8.1?}  error: {e}",
                    r.name, "-", "-", "-", r.elapsed
                )?;
            }
            JobStatus::Panicked {
                message, location, ..
            } => {
                failed += 1;
                let at = location
                    .as_ref()
                    .map(|l| format!(" at {l}"))
                    .unwrap_or_default();
                writeln!(
                    out,
                    "{:<12} {:>5} {:>9} {:<14} {:>8.1?}  panicked: {message}{at}",
                    r.name, "-", "-", "-", r.elapsed
                )?;
            }
        }
    }
    let cache_note = match &cache {
        Some(c) => {
            let (hits, misses) = c.stats();
            format!(", cache {hits} hits / {misses} misses")
        }
        None => String::new(),
    };
    let store_note = match &store {
        Some(db) => format!(
            ", store {} hits / {} misses ({} records)",
            store_report.hits.load(Ordering::SeqCst),
            store_report.misses.load(Ordering::SeqCst),
            db.lock().expect("store lock").len()
        ),
        None => String::new(),
    };
    writeln!(
        out,
        "{} jobs, {} ok, {} failed in {:.1?} ({} engine, {} worker{}{cache_note}{store_note})",
        total_jobs,
        total_jobs - failed,
        failed,
        total,
        engine,
        jobs,
        if jobs == 1 { "" } else { "s" },
    )?;
    if config.stats {
        writeln!(out, "sessions: {}", outcome.session_stats)?;
        if _faults.armed() {
            let fired = qsyn_faults::FaultPlane::fired();
            if fired.is_empty() {
                writeln!(out, "faults: none fired")?;
            } else {
                let list: Vec<String> = fired
                    .iter()
                    .map(|(site, kind)| format!("{} {kind}", site.name()))
                    .collect();
                writeln!(out, "faults: {}", list.join(", "))?;
            }
        }
    }
    if let Some(e) = journal_error.into_inner().expect("journal error lock") {
        writeln!(out, "warning: journal write failed: {e}")?;
    }
    if let Some(e) = store_report.error.into_inner().expect("store error lock") {
        writeln!(out, "warning: store write failed: {e}")?;
    }
    for skip in store_report.skips.into_inner().expect("store skip lock") {
        writeln!(
            out,
            "warning: store record skipped for {skip} (synthesized fresh)"
        )?;
    }
    Ok(i32::from(failed > 0))
}

/// Shared bookkeeping sinks for [`store_or_compute`] across batch
/// workers: hit/miss counters for the summary line, the first store
/// write failure, and the replay-skip reasons reported after the table.
#[derive(Default)]
struct StoreReport {
    hits: AtomicU64,
    misses: AtomicU64,
    error: Mutex<Option<String>>,
    skips: Mutex<Vec<String>>,
}

/// Output-permutation synthesis through the persistent circuit store: a
/// stored record for the spec's equivalence class replays without any
/// engine work; a fresh engine result is appended before it is reported
/// (one retry on transient failures, and a final failure degrades to a
/// warning — the batch answer is never lost to a store fault).
fn store_or_compute<F>(
    store: &Mutex<Store>,
    spec: &Spec,
    name: &str,
    report: &StoreReport,
    compute: F,
) -> Result<PermutedSynthesisResult, SynthesisError>
where
    F: FnOnce(&Spec) -> Result<PermutedSynthesisResult, SynthesisError>,
{
    let canonical = canonicalize(spec);
    let stored = {
        let guard = store.lock().expect("store lock");
        // A digest collision (or unreadable record) must not fail the
        // job: treat it as a miss and synthesize fresh.
        match guard.get(&canonical.spec) {
            Ok(found) => found.cloned(),
            Err(e) => {
                report
                    .skips
                    .lock()
                    .expect("store skip lock")
                    .push(format!("{name}: {e}"));
                None
            }
        }
    };
    if let Some(record) = stored {
        match replay_record(&record, &canonical.witness) {
            Ok(p) => {
                report.hits.fetch_add(1, Ordering::SeqCst);
                return Ok(p);
            }
            Err(reason) => {
                // A record this run cannot replay is reported, not
                // silently re-synthesized: the operator should know the
                // database holds an unusable entry for this class.
                report
                    .skips
                    .lock()
                    .expect("store skip lock")
                    .push(format!("{name}: {reason}"));
            }
        }
    }
    report.misses.fetch_add(1, Ordering::SeqCst);
    let p = compute(spec)?;
    // Derive the canonical-class record. Canonical line `witness[j]`
    // carries spec line `j`'s function, and circuit output
    // `p.permutation[j]` drives spec line `j`, so the stored permutation
    // `q` satisfies `q[witness[j]] = p.permutation[j]` (the inverse of
    // the composition `SpecCache::get_or_compute` applies on replay).
    let mut q = vec![0u32; p.permutation.len()];
    for (j, &i) in canonical.witness.iter().enumerate() {
        q[i as usize] = p.permutation[j];
    }
    let solutions = p.result.solutions();
    let best = solutions.best_by_quantum_cost();
    let record = StoredCircuit::for_spec(
        &canonical.spec,
        name,
        p.result.depth(),
        cost::circuit_cost(best),
        solutions.count(),
        solutions.count_is_exact(),
        q,
        real::write_real(best),
    );
    // fsync under the store mutex is the durability serialization point —
    // waived in xtask/concheck-allowlist.txt (blocking-under-lock).
    let mut guard = store.lock().expect("store lock");
    let mut attempt = guard.put(record.clone());
    if attempt
        .as_ref()
        .is_err_and(crate::store::StoreError::is_retryable)
    {
        attempt = guard.put(record);
    }
    if let Err(e) = attempt {
        report
            .error
            .lock()
            .expect("store error lock")
            .get_or_insert_with(|| format!("{name}: {e}"));
    }
    Ok(p)
}

/// Rebuilds a [`PermutedSynthesisResult`] from a stored record, composed
/// for the spec whose canonicalization `witness` selected the record's
/// class. `Err` carries the reason the record is unusable (unparsable
/// circuit, or a permutation that does not cover the witness) — callers
/// report it and fall back to the engine.
fn replay_record(
    record: &StoredCircuit,
    witness: &[u32],
) -> Result<PermutedSynthesisResult, String> {
    if record.solution_count == 0 {
        return Err("stored record has no solutions".to_string());
    }
    let circuit = real::parse_real(&record.circuit)
        .map_err(|e| format!("stored circuit failed to parse: {e}"))?;
    let permutation = witness
        .iter()
        .map(|&i| record.permutation.get(i as usize).copied())
        .collect::<Option<Vec<u32>>>()
        .ok_or_else(|| {
            format!(
                "stored permutation covers {} lines but the spec needs {}",
                record.permutation.len(),
                witness.len()
            )
        })?;
    let solutions = SolutionSet::replayed(circuit, record.solution_count, record.count_is_exact);
    Ok(PermutedSynthesisResult {
        result: SynthesisResult::replayed(solutions, record.depth, "store"),
        permutation,
        stats: permuted::PermutedSearchStats::default(),
    })
}

/// Why this configuration cannot share a persistent circuit store, if it
/// cannot: records are keyed by canonical spec alone and hold circuits
/// from the default (pure-mct) library, so any other library would replay
/// out-of-library gates or a wrong minimum. The message names the
/// offending flag so the operator knows exactly what to drop.
fn store_library_conflict(config: &SynthConfig) -> Option<String> {
    let offending = if config.library != "mct" {
        Some(format!("--library {}", config.library))
    } else if config.mixed_polarity {
        Some("--mixed-polarity".to_string())
    } else {
        None
    };
    offending.map(|flag| {
        format!(
            "--store is keyed by spec only and holds mct-library circuits; \
             replaying one into a `{flag}` run would answer with out-of-library \
             gates or a wrong minimum. Drop {flag} or --store \
             (per-library store keys are a ROADMAP item)"
        )
    })
}

fn emit_circuits(
    result: &crate::synth::SynthesisResult,
    config: &SynthConfig,
    out: &mut dyn std::io::Write,
) -> std::io::Result<i32> {
    let best = result.solutions().best_by_quantum_cost();
    if let Some(path) = &config.output {
        std::fs::write(path, real::write_real(best))?;
        writeln!(out, "wrote {path}")?;
    } else if config.all {
        for (i, c) in result.solutions().circuits().iter().enumerate() {
            writeln!(
                out,
                "# solution {} (quantum cost {})",
                i + 1,
                cost::circuit_cost(c)
            )?;
            write!(out, "{c}")?;
        }
    } else {
        write!(out, "{}", real::write_real(best))?;
    }
    Ok(0)
}

fn load_circuit(path: &str) -> Result<crate::revlogic::Circuit, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    real::parse_real(&text).map_err(|e| e.to_string())
}

fn fail(out: &mut dyn std::io::Write, message: &str) -> std::io::Result<i32> {
    writeln!(out, "error: {message}")?;
    Ok(2)
}

/// Executes `qsyn serve`: opens the database, boots the daemon core
/// (optionally warm-started via `--preload`), prints the bound address
/// and serves the line protocol until a `shutdown` verb arrives.
///
/// `preload` carries the batch target together with the
/// `--preload-permute` flag; the flag is meaningless without a target
/// (it only changes how preload fills are synthesized).
fn run_serve(
    addr: &str,
    store_path: Option<&str>,
    preload: Option<(&str, bool)>,
    jobs: usize,
    queue: usize,
    config: &SynthConfig,
    out: &mut dyn std::io::Write,
) -> std::io::Result<i32> {
    let library = match config.gate_library() {
        Ok(l) => l,
        Err(e) => return fail(out, &e),
    };
    let EngineChoice::Single(engine) = config.engine else {
        return fail(
            out,
            "serve: --engine race is not supported; pick one engine",
        );
    };
    if let Some(message) = store_library_conflict(config) {
        // Same invariant as `batch --store`: records are keyed by
        // canonical spec alone, so a persistent store must hold circuits
        // from one gate library (the default). A store-less daemon may
        // use any library: its in-memory index lives exactly as long as
        // this configuration.
        if store_path.is_some() {
            return fail(out, &message);
        }
    }
    let store = match store_path {
        Some(path) => match Store::open(std::path::Path::new(path)) {
            Ok(s) => {
                if s.truncated_tail_bytes() > 0 {
                    writeln!(
                        out,
                        "store: {path} recovered ({} records, {} torn tail bytes truncated)",
                        s.len(),
                        s.truncated_tail_bytes()
                    )?;
                } else {
                    writeln!(out, "store: {path} ({} records)", s.len())?;
                }
                Some(s)
            }
            Err(e) => return fail(out, &format!("{path}: {e}")),
        },
        None => None,
    };
    let serve_config = ServeConfig {
        workers: jobs,
        queue_capacity: queue,
        library,
        engine,
        max_depth: config.max_depth,
        time_budget: config.timeout.map(Duration::from_secs),
        preload_permute: preload.is_some_and(|(_, permute)| permute),
    };
    let core = Arc::new(ServeCore::start(&serve_config, store));
    if let Some((target, _)) = preload {
        let work = match batch_jobs(target) {
            Ok(w) => w,
            Err(e) => return fail(out, &e),
        };
        let (served, failed) = core.preload(&work);
        writeln!(out, "preloaded {served} jobs ({failed} failed)")?;
    }
    let listener = match std::net::TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => return fail(out, &format!("{addr}: {e}")),
    };
    writeln!(out, "listening on {}", listener.local_addr()?)?;
    // Smoke harnesses wait for that line through a pipe: flush before
    // blocking in accept.
    out.flush()?;
    let snapshot = serve_tcp(listener, &core)?;
    if config.stats {
        writeln!(out, "{snapshot}")?;
    }
    Ok(0)
}

/// Executes `qsyn query`: one request line to a running daemon, one
/// reply rendered for humans. Exit 0 on a served answer, 2 on daemon
/// errors or connection failures.
fn run_query(
    addr: &str,
    action: &QueryAction,
    out: &mut dyn std::io::Write,
) -> std::io::Result<i32> {
    match action {
        QueryAction::Ping => match roundtrip(addr, &protocol::render_verb_request("ping")) {
            Ok(reply) if reply == protocol::render_pong() => {
                writeln!(out, "pong")?;
                Ok(0)
            }
            Ok(reply) => fail(out, &format!("unexpected reply: {reply}")),
            Err(e) => fail(out, &format!("{addr}: {e}")),
        },
        QueryAction::Shutdown => {
            match roundtrip(addr, &protocol::render_verb_request("shutdown")) {
                Ok(reply) if reply == protocol::render_closing() => {
                    writeln!(out, "daemon closing")?;
                    Ok(0)
                }
                Ok(reply) => fail(out, &format!("unexpected reply: {reply}")),
                Err(e) => fail(out, &format!("{addr}: {e}")),
            }
        }
        QueryAction::Stats => match roundtrip(addr, &protocol::render_verb_request("stats")) {
            Ok(reply) => match protocol::parse_stats(&reply) {
                Some(s) => {
                    writeln!(out, "{s}")?;
                    Ok(0)
                }
                None => fail(out, &format!("unexpected reply: {reply}")),
            },
            Err(e) => fail(out, &format!("{addr}: {e}")),
        },
        QueryAction::Synth { target, name } => {
            // A benchmark name is sent by name (the daemon owns the
            // suite); anything else must be a readable `.spec` file,
            // validated locally so malformed input fails before the wire.
            let (spec_text, bench, default_name);
            if benchmarks::by_name(target).is_some() {
                (spec_text, bench, default_name) = (None, Some(target.as_str()), target.clone());
            } else {
                let text = match std::fs::read_to_string(target) {
                    Ok(t) => t,
                    Err(e) => {
                        return fail(
                            out,
                            &format!(
                                "`{target}` is neither a benchmark name nor a readable \
                                 spec file ({e})"
                            ),
                        )
                    }
                };
                if let Err(e) = spec_format::parse_spec(&text) {
                    return fail(out, &format!("{target}: {e}"));
                }
                let stem = std::path::Path::new(target)
                    .file_stem()
                    .map_or_else(|| target.clone(), |s| s.to_string_lossy().into_owned());
                (spec_text, bench, default_name) = (Some(text), None, stem);
            }
            let label = name.clone().unwrap_or(default_name);
            let line = protocol::render_synth_request(Some(&label), spec_text.as_deref(), bench);
            let reply = match roundtrip(addr, &line) {
                Ok(r) => r,
                Err(e) => return fail(out, &format!("{addr}: {e}")),
            };
            if let Some(r) = protocol::parse_synth_reply(&reply) {
                writeln!(
                    out,
                    "{}: {} gates, {} solutions, quantum cost {}, permutation {:?} \
                     ({} in {}µs)",
                    r.name,
                    r.depth,
                    r.solutions,
                    r.quantum_cost,
                    r.permutation,
                    r.source,
                    r.elapsed_us
                )?;
                write!(out, "{}", r.circuit)?;
                Ok(0)
            } else if let Some((message, retryable)) = protocol::parse_error(&reply) {
                let suffix = if retryable { " (retryable)" } else { "" };
                fail(out, &format!("{message}{suffix}"))
            } else {
                fail(out, &format!("unexpected reply: {reply}"))
            }
        }
    }
}

/// Executes `qsyn store verify|stats`: offline inspection of a circuit
/// database. `verify` exits 0 only when every record checks out (exit 1
/// on a verification failure, 2 on an unreadable file); `stats` prints
/// counts plus one deterministic line per record.
fn run_store_command(
    action: StoreAction,
    path: &str,
    out: &mut dyn std::io::Write,
) -> std::io::Result<i32> {
    let store = match Store::open(std::path::Path::new(path)) {
        Ok(s) => s,
        Err(e) => return fail(out, &format!("{path}: {e}")),
    };
    match action {
        StoreAction::Verify => match store.verify() {
            Ok(()) => {
                writeln!(
                    out,
                    "ok: {} records, {} bytes ({} torn tail bytes truncated on open)",
                    store.len(),
                    store.file_bytes(),
                    store.truncated_tail_bytes()
                )?;
                Ok(0)
            }
            Err(e) => {
                writeln!(out, "FAILED: {e}")?;
                Ok(1)
            }
        },
        StoreAction::Stats => {
            writeln!(out, "records: {}", store.len())?;
            writeln!(out, "bytes: {}", store.file_bytes())?;
            writeln!(
                out,
                "torn tail truncated: {} bytes",
                store.truncated_tail_bytes()
            )?;
            for r in store.records() {
                writeln!(
                    out,
                    "{:016x} {:<12} {} lines, {} gates, {} solutions, quantum cost {}, \
                     permutation {:?}",
                    r.digest,
                    r.name,
                    r.lines,
                    r.depth,
                    r.count_display(),
                    r.quantum_cost,
                    r.permutation
                )?;
            }
            Ok(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        Command::parse(args.iter().copied())
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse(&[]), Ok(Command::Help));
        assert_eq!(parse(&["--help"]), Ok(Command::Help));
    }

    #[test]
    fn parses_bench_with_options() {
        let cmd = parse(&[
            "bench",
            "3_17",
            "--engine",
            "sat",
            "--library",
            "mct+p",
            "--mixed-polarity",
            "--max-depth",
            "9",
            "--timeout",
            "5",
            "--all",
            "--stats",
        ])
        .unwrap();
        let Command::Synth { source, config } = cmd else {
            panic!("expected synth");
        };
        assert_eq!(source, Source::Benchmark("3_17".into()));
        assert_eq!(config.engine, EngineChoice::Single(Engine::Sat));
        assert_eq!(config.library, "mct+p");
        assert!(config.mixed_polarity);
        assert_eq!(config.max_depth, 9);
        assert_eq!(config.timeout, Some(5));
        assert!(config.all);
        assert!(config.stats);
        assert!(config.gate_library().unwrap().has_mixed_polarity());
    }

    #[test]
    fn stats_flag_prints_manager_counters() {
        let cmd = parse(&["bench", "3_17", "--stats"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("bdd: "), "{text}");
        assert!(text.contains("hit rate"), "{text}");
    }

    #[test]
    fn rejects_unknown_flags_and_commands() {
        assert!(parse(&["bench", "3_17", "--wat"]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["bench", "3_17", "--engine", "magic"]).is_err());
        assert!(parse(&["simulate", "a.real"]).is_err());
        assert!(parse(&["cost", "a.real", "extra"]).is_err());
        assert!(parse(&["batch"]).is_err());
        assert!(parse(&["batch", "suite", "--jobs"]).is_err());
        assert!(parse(&["batch", "suite", "--jobs", "0"]).is_err());
        assert!(parse(&["batch", "suite", "--wat"]).is_err());
    }

    #[test]
    fn parses_batch_with_options() {
        let cmd = parse(&[
            "batch",
            "suite",
            "--jobs",
            "4",
            "--engine",
            "race",
            "--no-cache",
            "--timeout",
            "30",
        ])
        .unwrap();
        let Command::Batch {
            target,
            jobs,
            no_cache,
            journal,
            resume,
            store,
            no_permute,
            config,
        } = cmd
        else {
            panic!("expected batch");
        };
        assert_eq!(target, "suite");
        assert_eq!(jobs, 4);
        assert!(no_cache);
        assert_eq!(journal, None);
        assert!(!resume);
        assert_eq!(store, None);
        assert!(!no_permute);
        assert_eq!(config.engine, EngineChoice::Race);
        assert_eq!(config.timeout, Some(30));
    }

    #[test]
    fn parses_robustness_flags() {
        let cmd = parse(&[
            "batch",
            "suite",
            "--journal",
            "runs.jsonl",
            "--resume",
            "--retries",
            "2",
            "--ladder",
            "qbf,sat",
            "--fault-seed",
            "7",
        ])
        .unwrap();
        let Command::Batch {
            journal,
            resume,
            config,
            ..
        } = cmd
        else {
            panic!("expected batch");
        };
        assert_eq!(journal.as_deref(), Some("runs.jsonl"));
        assert!(resume);
        assert_eq!(config.retries, 2);
        assert_eq!(config.ladder, vec![Engine::Qbf, Engine::Sat]);
        assert_eq!(config.fault_seed, Some(7));
        let policy = config.retry_policy();
        assert_eq!(policy.max_attempts, 3);
        assert_eq!(policy.engine_ladder, vec![Engine::Qbf, Engine::Sat]);
        // --ladder without --retries grants one retry per rung.
        let cmd = parse(&["bench", "3_17", "--ladder", "sat"]).unwrap();
        let Command::Synth { config, .. } = cmd else {
            panic!("expected synth");
        };
        assert_eq!(config.retry_policy().max_attempts, 2);
        // Malformed robustness flags are rejected.
        assert!(parse(&["batch", "suite", "--resume"]).is_err());
        assert!(parse(&["batch", "suite", "--ladder", "race"]).is_err());
        assert!(parse(&["batch", "suite", "--ladder", ""]).is_err());
        assert!(parse(&["batch", "suite", "--retries", "x"]).is_err());
        assert!(parse(&["batch", "suite", "--fault-seed", "-1"]).is_err());
    }

    #[cfg(not(feature = "faults"))]
    #[test]
    fn fault_seed_is_rejected_without_the_faults_feature() {
        let cmd = parse(&["bench", "3_17", "--fault-seed", "1"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 2);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("--features faults"), "{text}");
    }

    #[test]
    fn batch_of_mixed_jobs_prints_one_row_per_job() {
        let dir = std::env::temp_dir().join("qsyn-cli-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        // cnot-twin is cnot with the output lines relabeled (rows mapped
        // through the swap), so the cache must answer it with a hit.
        let cnot = dir.join("cnot.spec");
        std::fs::write(
            &cnot,
            ".numvars 2\n.begin\n00 00\n01 11\n10 10\n11 01\n.end\n",
        )
        .unwrap();
        let twin = dir.join("cnot-twin.spec");
        std::fs::write(
            &twin,
            ".numvars 2\n.begin\n00 00\n01 11\n10 01\n11 10\n.end\n",
        )
        .unwrap();
        let list = dir.join("jobs.txt");
        let entries = format!(
            "# one benchmark, two spec files\n3_17\n{}\n{}\n",
            cnot.display(),
            twin.display()
        );
        std::fs::write(&list, entries).unwrap();
        let cmd = parse(&["batch", list.to_str().unwrap(), "--jobs", "2"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("3_17"), "{text}");
        assert!(text.contains("cnot"), "{text}");
        assert!(text.contains("cnot-twin"), "{text}");
        assert!(text.contains("3 jobs, 3 ok, 0 failed"), "{text}");
        assert!(text.contains("cache 1 hits / 2 misses"), "{text}");
    }

    #[test]
    fn batch_journal_records_and_resume_replays() {
        let dir = std::env::temp_dir().join(format!("qsyn-cli-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cnot = dir.join("cnot.spec");
        std::fs::write(
            &cnot,
            ".numvars 2\n.begin\n00 00\n01 11\n10 10\n11 01\n.end\n",
        )
        .unwrap();
        let list = dir.join("jobs.txt");
        std::fs::write(&list, format!("3_17\n{}\n", cnot.display())).unwrap();
        let journal = dir.join("runs.jsonl");
        let _ = std::fs::remove_file(&journal);

        // Full run: every completion is journaled.
        let cmd = parse(&[
            "batch",
            list.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
        ])
        .unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let full = crate::portfolio::read_journal(&journal).unwrap();
        assert_eq!(full.len(), 2, "{full:?}");

        // Simulate a kill after the first job: truncate the journal to
        // its first record, then resume. The first job is replayed (its
        // recorded time reappears verbatim), the second re-runs, and the
        // rebuilt journal carries the same result digests as the full run.
        std::fs::write(
            &journal,
            format!("{}\n", crate::portfolio::journal::render_record(&full[0])),
        )
        .unwrap();
        let cmd = parse(&[
            "batch",
            list.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
            "--resume",
        ])
        .unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("2 jobs, 2 ok, 0 failed"), "{text}");
        assert!(
            text.contains(&format!("{:.1?}", Duration::from_nanos(full[0].elapsed_ns))),
            "replayed row reprints the journaled time\n{text}"
        );
        let resumed = crate::portfolio::read_journal(&journal).unwrap();
        assert_eq!(resumed.len(), 2);
        for (a, b) in full.iter().zip(&resumed) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.digest, b.digest, "resume must reproduce {}", a.name);
        }

        // A resume over a complete journal re-runs nothing: the cache
        // sees no traffic at all.
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("cache 0 hits / 0 misses"), "{text}");
    }

    #[test]
    fn batch_rejects_bad_targets() {
        let cmd = parse(&["batch", "/nonexistent/nowhere"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 2);
    }

    #[test]
    fn race_engine_synthesizes_a_benchmark() {
        let cmd = parse(&["bench", "3_17", "--engine", "race"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("minimal gates: 6"), "{text}");
        assert!(text.contains("race winner:"), "{text}");
    }

    #[test]
    fn parses_audit_command() {
        assert_eq!(
            parse(&["audit", "--self-test"]),
            Ok(Command::Audit {
                paths: vec![],
                self_test: true,
            })
        );
        assert_eq!(
            parse(&["audit", "a.real", "b.cnf"]),
            Ok(Command::Audit {
                paths: vec!["a.real".into(), "b.cnf".into()],
                self_test: false,
            })
        );
        // No files and no --self-test is an error, as is an unknown flag.
        assert!(parse(&["audit"]).is_err());
        assert!(parse(&["audit", "--wat"]).is_err());
    }

    #[test]
    fn audit_self_test_reports_accepts_and_rejections() {
        let cmd = parse(&["audit", "--self-test"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("self-test"), "{text}");
        assert!(text.contains("rejected"), "{text}");
    }

    #[test]
    fn audit_accepts_clean_files_and_rejects_garbage() {
        let dir = std::env::temp_dir().join("qsyn-cli-audit-test");
        std::fs::create_dir_all(&dir).unwrap();
        let circ = dir.join("ok.real");
        std::fs::write(&circ, ".numvars 2\n.begin\nt2 x1 x2\n.end\n").unwrap();
        let qbf = dir.join("ok.qdimacs");
        std::fs::write(&qbf, "p cnf 2 1\ne 1 0\n1 -2 0\n").unwrap();
        let cmd = parse(&["audit", circ.to_str().unwrap(), qbf.to_str().unwrap()]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.matches(": ok").count(), 2, "{text}");
        // Unknown extensions and unreadable files exit 2.
        let cmd = parse(&["audit", "nope.xyz"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 2);
    }

    #[test]
    fn audit_reports_parser_asserts_as_input_errors() {
        // The gate and prefix constructors assert their invariants; a
        // corrupt file must exit 2 with a message, not unwind (exit 101).
        let dir = std::env::temp_dir().join("qsyn-cli-audit-panic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let overlap = dir.join("overlap.real");
        std::fs::write(&overlap, ".numvars 2\n.begin\nt2 x1 x1\n.end\n").unwrap();
        let cmd = parse(&["audit", overlap.to_str().unwrap()]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 2);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("target cannot be a control"), "{text}");

        let dup = dir.join("dup.qdimacs");
        std::fs::write(&dup, "p cnf 2 1\ne 1 0\ne 1 0\n1 -2 0\n").unwrap();
        let cmd = parse(&["audit", dup.to_str().unwrap()]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 2);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("already quantified"), "{text}");
    }

    #[test]
    fn library_resolution() {
        let mut c = SynthConfig::default();
        assert_eq!(c.gate_library().unwrap().label(), "MCT");
        c.library = "all".into();
        assert_eq!(c.gate_library().unwrap().label(), "MCT+MCF+P");
        c.library = "bogus".into();
        assert!(c.gate_library().is_err());
    }

    #[test]
    fn list_prints_benchmarks() {
        let mut buf = Vec::new();
        assert_eq!(run(&Command::List, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("hwb4"));
        assert!(text.contains("alu-v3"));
    }

    #[test]
    fn bench_synthesis_end_to_end() {
        let cmd = parse(&["bench", "3_17"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("minimal gates: 6"), "{text}");
        assert!(text.contains(".begin"));
    }

    #[test]
    fn unknown_benchmark_fails_cleanly() {
        let cmd = parse(&["bench", "nope"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 2);
        assert!(String::from_utf8(buf)
            .unwrap()
            .contains("unknown benchmark"));
    }

    #[test]
    fn synth_from_spec_file_and_check_roundtrip() {
        let dir = std::env::temp_dir().join("qsyn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("xor.spec");
        // 2-line spec: x2 ^= x1 (a CNOT).
        std::fs::write(
            &spec_path,
            ".numvars 2\n.begin\n00 00\n01 11\n10 10\n11 01\n.end\n",
        )
        .unwrap();
        let out_path = dir.join("xor.real");
        let cmd = parse(&[
            "synth",
            spec_path.to_str().unwrap(),
            "-o",
            out_path.to_str().unwrap(),
        ])
        .unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        // simulate 01 (x1 = 1) → 11.
        let sim = parse(&["simulate", out_path.to_str().unwrap(), "01"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&sim, &mut buf).unwrap(), 0);
        assert!(String::from_utf8(buf).unwrap().contains("01 -> 11"));
        // cost works.
        let cost_cmd = parse(&["cost", out_path.to_str().unwrap()]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cost_cmd, &mut buf).unwrap(), 0);
        // self-equivalence.
        let check = parse(&[
            "check",
            out_path.to_str().unwrap(),
            out_path.to_str().unwrap(),
        ])
        .unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&check, &mut buf).unwrap(), 0);
        assert!(String::from_utf8(buf).unwrap().contains("EQUIVALENT"));
        // spec extraction contains the truth table.
        let spec_cmd = parse(&["spec", out_path.to_str().unwrap()]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&spec_cmd, &mut buf).unwrap(), 0);
        assert!(String::from_utf8(buf).unwrap().contains("01 11"));
    }

    #[test]
    fn heuristic_flag_synthesizes_fast() {
        let cmd = parse(&["bench", "hwb4", "--heuristic"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("heuristic realization"), "{text}");
        assert!(text.contains(".begin"));
    }

    #[test]
    fn heuristic_rejects_incomplete_specs() {
        let cmd = parse(&["bench", "rd32-v0", "--heuristic"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 2);
        assert!(String::from_utf8(buf)
            .unwrap()
            .contains("completely specified"));
    }

    #[test]
    fn output_permutation_flag_works() {
        // SWAP: free with output permutation.
        let dir = std::env::temp_dir().join("qsyn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("swap.spec");
        std::fs::write(
            &spec_path,
            ".numvars 2\n.begin\n00 00\n01 10\n10 01\n11 11\n.end\n",
        )
        .unwrap();
        let cmd = parse(&["synth", spec_path.to_str().unwrap(), "--output-permutation"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("minimal gates: 0"), "{text}");
    }

    #[test]
    fn parses_serve_with_options() {
        let cmd = parse(&[
            "serve",
            "127.0.0.1:7878",
            "--store",
            "db.qsyn",
            "--preload",
            "suite",
            "--jobs",
            "3",
            "--queue",
            "8",
            "--engine",
            "sat",
            "--max-depth",
            "10",
            "--timeout",
            "30",
            "--stats",
        ])
        .unwrap();
        let Command::Serve {
            addr,
            store,
            preload,
            jobs,
            queue,
            preload_permute,
            config,
        } = cmd
        else {
            panic!("expected serve");
        };
        assert_eq!(addr, "127.0.0.1:7878");
        assert_eq!(store.as_deref(), Some("db.qsyn"));
        assert_eq!(preload.as_deref(), Some("suite"));
        assert_eq!(jobs, 3);
        assert_eq!(queue, 8);
        assert!(!preload_permute, "preload runs plain synthesis by default");
        assert_eq!(config.engine, EngineChoice::Single(Engine::Sat));
        assert_eq!(config.max_depth, 10);
        assert_eq!(config.timeout, Some(30));
        assert!(config.stats);
        // Opting preload back into the permutation search parses, but only
        // alongside --preload.
        let cmd = parse(&["serve", ":0", "--preload", "suite", "--preload-permute"]).unwrap();
        let Command::Serve {
            preload_permute, ..
        } = cmd
        else {
            panic!("expected serve");
        };
        assert!(preload_permute);
        let err = parse(&["serve", ":0", "--preload-permute"]).unwrap_err();
        assert!(
            err.contains("--preload-permute requires --preload"),
            "{err}"
        );
        // Flags that make no sense for a daemon are rejected at parse time.
        assert!(parse(&["serve"]).is_err());
        assert!(parse(&["serve", ":0", "--engine", "race"]).is_err());
        assert!(parse(&["serve", ":0", "--all"]).is_err());
        assert!(parse(&["serve", ":0", "-o", "x.real"]).is_err());
        assert!(parse(&["serve", ":0", "--heuristic"]).is_err());
        assert!(parse(&["serve", ":0", "--retries", "1"]).is_err());
        assert!(parse(&["serve", ":0", "--ladder", "sat"]).is_err());
        assert!(parse(&["serve", ":0", "--fault-seed", "1"]).is_err());
        assert!(parse(&["serve", ":0", "--jobs", "0"]).is_err());
        assert!(parse(&["serve", ":0", "--queue", "0"]).is_err());
        assert!(parse(&["serve", ":0", "--wat"]).is_err());
    }

    #[test]
    fn parses_query_variants() {
        assert_eq!(
            parse(&["query", "localhost:7878", "3_17"]),
            Ok(Command::Query {
                addr: "localhost:7878".into(),
                action: QueryAction::Synth {
                    target: "3_17".into(),
                    name: None,
                },
            })
        );
        assert_eq!(
            parse(&["query", ":1", "f.spec", "--name", "job7"]),
            Ok(Command::Query {
                addr: ":1".into(),
                action: QueryAction::Synth {
                    target: "f.spec".into(),
                    name: Some("job7".into()),
                },
            })
        );
        for (flag, action) in [
            ("--stats", QueryAction::Stats),
            ("--ping", QueryAction::Ping),
            ("--shutdown", QueryAction::Shutdown),
        ] {
            assert_eq!(
                parse(&["query", ":1", flag]),
                Ok(Command::Query {
                    addr: ":1".into(),
                    action,
                })
            );
        }
        assert!(parse(&["query"]).is_err());
        assert!(parse(&["query", ":1"]).is_err());
        assert!(parse(&["query", ":1", "3_17", "--stats"]).is_err());
        assert!(parse(&["query", ":1", "--name", "x", "--ping"]).is_err());
        assert!(parse(&["query", ":1", "a", "b"]).is_err());
        assert!(parse(&["query", ":1", "--wat"]).is_err());
    }

    #[test]
    fn parses_store_actions() {
        assert_eq!(
            parse(&["store", "verify", "db.qsyn"]),
            Ok(Command::Store {
                action: StoreAction::Verify,
                path: "db.qsyn".into(),
            })
        );
        assert_eq!(
            parse(&["store", "stats", "db.qsyn"]),
            Ok(Command::Store {
                action: StoreAction::Stats,
                path: "db.qsyn".into(),
            })
        );
        assert!(parse(&["store"]).is_err());
        assert!(parse(&["store", "frob", "db.qsyn"]).is_err());
        assert!(parse(&["store", "verify"]).is_err());
        assert!(parse(&["store", "verify", "db.qsyn", "extra"]).is_err());
        // batch grows a --store flag.
        let cmd = parse(&["batch", "suite", "--store", "db.qsyn"]).unwrap();
        let Command::Batch { store, .. } = cmd else {
            panic!("expected batch");
        };
        assert_eq!(store.as_deref(), Some("db.qsyn"));
    }

    #[test]
    fn store_rejects_non_default_gate_libraries() {
        // Store records are keyed by spec only, so a persistent database
        // must not mix gate libraries (a stored mct circuit would answer
        // an mcf or mixed-polarity run).
        for args in [
            vec![
                "batch",
                "3_17",
                "--store",
                "/tmp/x.db",
                "--library",
                "mct+mcf",
            ],
            vec!["batch", "3_17", "--store", "/tmp/x.db", "--mixed-polarity"],
            vec![
                "serve",
                "127.0.0.1:0",
                "--store",
                "/tmp/x.db",
                "--library",
                "all",
            ],
            vec![
                "serve",
                "127.0.0.1:0",
                "--store",
                "/tmp/x.db",
                "--mixed-polarity",
            ],
        ] {
            let cmd = parse(&args).unwrap();
            let mut buf = Vec::new();
            assert_eq!(run(&cmd, &mut buf).unwrap(), 2, "{args:?}");
            let text = String::from_utf8(buf).unwrap();
            assert!(text.contains("keyed by spec only"), "{args:?}: {text}");
        }
    }

    #[test]
    fn store_conflict_message_names_the_offending_flag() {
        // The refusal must say *which* setting conflicts, not just that
        // something does — the old generic message left the operator
        // guessing which flag to drop.
        let cmd = parse(&[
            "batch",
            "3_17",
            "--store",
            "/tmp/x.db",
            "--library",
            "mct+mcf",
        ])
        .unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 2);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("--library mct+mcf"), "{text}");
        assert!(text.contains("Drop --library mct+mcf or --store"), "{text}");

        let cmd = parse(&["batch", "3_17", "--store", "/tmp/x.db", "--mixed-polarity"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 2);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Drop --mixed-polarity or --store"), "{text}");

        // Without --store the same library flags are fine.
        let dir = std::env::temp_dir().join(format!("qsyn-cli-conflict-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let list = dir.join("jobs.txt");
        std::fs::write(&list, "3_17\n").unwrap();
        let cmd = parse(&["batch", list.to_str().unwrap(), "--library", "mct+mcf"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
    }

    #[test]
    fn unusable_store_record_is_reported_not_silently_dropped() {
        let dir = std::env::temp_dir().join(format!("qsyn-cli-skip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let db = dir.join("bad.qsyn");
        let _ = std::fs::remove_file(&db);
        // Seed the database with an unusable record for 3_17's class: a
        // zero-solution entry can never replay.
        let spec = benchmarks::by_name("3_17").unwrap().spec;
        let canonical = canonicalize(&spec).spec;
        {
            let mut store = Store::open(&db).unwrap();
            let record = StoredCircuit::for_spec(
                &canonical,
                "3_17",
                0,
                0,
                0,
                true,
                (0..spec.lines()).collect(),
                String::new(),
            );
            store.put(record).unwrap();
        }
        let list = dir.join("jobs.txt");
        std::fs::write(&list, "3_17\n").unwrap();
        let cmd = parse(&[
            "batch",
            list.to_str().unwrap(),
            "--store",
            db.to_str().unwrap(),
        ])
        .unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        // The job still completes (engine fallback)…
        assert!(text.contains("1 jobs, 1 ok, 0 failed"), "{text}");
        // …but the skip is reported with its reason.
        assert!(
            text.contains(
                "warning: store record skipped for 3_17: stored record has no solutions \
                 (synthesized fresh)"
            ),
            "{text}"
        );
    }

    #[test]
    fn batch_no_permute_synthesizes_under_the_given_labeling() {
        let dir = std::env::temp_dir().join(format!("qsyn-cli-noperm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // SWAP: free output relabeling gives depth 0; plain synthesis
        // must pay the 3 CNOTs and report the identity permutation.
        let swap = dir.join("swap.spec");
        std::fs::write(
            &swap,
            ".numvars 2\n.begin\n00 00\n01 10\n10 01\n11 11\n.end\n",
        )
        .unwrap();
        let list = dir.join("jobs.txt");
        std::fs::write(&list, format!("{}\n", swap.display())).unwrap();

        let cmd = parse(&["batch", list.to_str().unwrap(), "--no-permute"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("1 jobs, 1 ok, 0 failed"), "{text}");
        let row = text.lines().find(|l| l.starts_with("swap")).unwrap();
        assert!(row.contains("[0, 1]"), "identity labeling: {row}");
        assert!(row.split_whitespace().nth(1) == Some("3"), "3 gates: {row}");

        // The default (permuted) run absorbs SWAP into the labeling.
        let cmd = parse(&["batch", list.to_str().unwrap()]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        let row = text.lines().find(|l| l.starts_with("swap")).unwrap();
        assert!(row.split_whitespace().nth(1) == Some("0"), "0 gates: {row}");

        // --no-permute refuses to feed labeling-specific answers into the
        // canonical-class store.
        let err = parse(&["batch", "suite", "--no-permute", "--store", "/tmp/x.db"]).unwrap_err();
        assert!(
            err.contains("one canonical circuit per permutation class"),
            "{err}"
        );
    }

    #[test]
    fn batch_store_populates_then_replays_without_an_engine() {
        let dir = std::env::temp_dir().join(format!("qsyn-cli-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let db = dir.join("circuits.qsyn");
        let _ = std::fs::remove_file(&db);
        let cnot = dir.join("cnot.spec");
        std::fs::write(
            &cnot,
            ".numvars 2\n.begin\n00 00\n01 11\n10 10\n11 01\n.end\n",
        )
        .unwrap();
        let list = dir.join("jobs.txt");
        std::fs::write(&list, format!("3_17\n{}\n", cnot.display())).unwrap();

        // Cold run: every class misses the store and is appended.
        let cmd = parse(&[
            "batch",
            list.to_str().unwrap(),
            "--store",
            db.to_str().unwrap(),
        ])
        .unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("2 jobs, 2 ok, 0 failed"), "{text}");
        assert!(
            text.contains("store 0 hits / 2 misses (2 records)"),
            "{text}"
        );

        // Second run (fresh cache): both classes replay from disk.
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("2 jobs, 2 ok, 0 failed"), "{text}");
        assert!(
            text.contains("store 2 hits / 0 misses (2 records)"),
            "{text}"
        );
        // Replayed rows report the same depths as the fresh run.
        assert!(text.contains("3_17"), "{text}");

        // An equivalent respelling of a stored class is also a hit: the
        // cnot-twin spec permutes cnot's output lines.
        let twin = dir.join("cnot-twin.spec");
        std::fs::write(
            &twin,
            ".numvars 2\n.begin\n00 00\n01 11\n10 01\n11 10\n.end\n",
        )
        .unwrap();
        let list2 = dir.join("jobs2.txt");
        std::fs::write(&list2, format!("{}\n", twin.display())).unwrap();
        let cmd = parse(&[
            "batch",
            list2.to_str().unwrap(),
            "--store",
            db.to_str().unwrap(),
        ])
        .unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("store 1 hits / 0 misses (2 records)"),
            "{text}"
        );

        // Offline inspection: verify passes, stats lists both records.
        let cmd = parse(&["store", "verify", db.to_str().unwrap()]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        assert!(String::from_utf8(buf).unwrap().starts_with("ok: 2 records"));
        let cmd = parse(&["store", "stats", db.to_str().unwrap()]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("records: 2"), "{text}");
        assert!(text.contains("3_17"), "{text}");
        // Missing databases fail with exit 2, not a panic.
        let cmd = parse(&["store", "verify", "/nonexistent/db.qsyn"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 2);
    }

    /// A byte sink shared with a daemon thread, so the test can read the
    /// bound address while `run` is still blocked in the accept loop.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
        }
    }

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn serve_and_query_round_trip_over_tcp() {
        let serve_cmd = parse(&[
            "serve",
            "127.0.0.1:0",
            "--jobs",
            "1",
            "--max-depth",
            "8",
            "--stats",
        ])
        .unwrap();
        let server_out = SharedBuf::default();
        let mut thread_out = server_out.clone();
        let server = std::thread::spawn(move || run(&serve_cmd, &mut thread_out).unwrap());
        let addr = loop {
            let text = server_out.text();
            if let Some(rest) = text.split("listening on ").nth(1) {
                break rest.lines().next().unwrap().trim().to_string();
            }
            std::thread::sleep(Duration::from_millis(10));
        };

        let query = |args: &[&str]| -> (i32, String) {
            let mut full = vec!["query", &addr];
            full.extend_from_slice(args);
            let cmd = parse(&full).unwrap();
            let mut buf = Vec::new();
            let code = run(&cmd, &mut buf).unwrap();
            (code, String::from_utf8(buf).unwrap())
        };

        let (code, text) = query(&["--ping"]);
        assert_eq!(code, 0, "{text}");
        assert_eq!(text.trim(), "pong");

        // Cold: the engine synthesizes; repeat: served from the index.
        let (code, text) = query(&["3_17"]);
        assert_eq!(code, 0, "{text}");
        // The daemon synthesizes with free output relabeling, so 3_17's
        // class minimum (5 gates) beats its identity-output depth (6).
        assert!(text.contains("3_17: 5 gates"), "{text}");
        assert!(text.contains("(engine in"), "{text}");
        assert!(text.contains(".begin"), "{text}");
        let (code, text) = query(&["3_17", "--name", "again"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("(store in"), "{text}");

        let (code, text) = query(&["--stats"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("engine invocations: 1"), "{text}");

        // Unknown targets fail client-side without touching the daemon.
        let (code, text) = query(&["no-such-bench"]);
        assert_eq!(code, 2, "{text}");

        let (code, text) = query(&["--shutdown"]);
        assert_eq!(code, 0, "{text}");
        assert_eq!(text.trim(), "daemon closing");
        assert_eq!(server.join().unwrap(), 0);
        let text = server_out.text();
        assert!(text.contains("listening on"), "{text}");
        assert!(text.contains("engine invocations: 1"), "{text}");
    }
}
