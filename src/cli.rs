//! Command-line interface for the `qsyn` tool.
//!
//! Subcommands:
//!
//! * `synth <file.spec>` — exact synthesis of a truth-table specification,
//!   emitting a RevLib `.real` circuit,
//! * `bench <name>` — synthesize a built-in benchmark,
//! * `simulate <file.real> <bits>` — run a circuit on one input,
//! * `cost <file.real>` — gate count and quantum cost,
//! * `check <a.real> <b.real>` — equivalence check with counterexample,
//! * `spec <file.real>` — extract the truth table of a circuit,
//! * `list` — list the built-in benchmarks.
//!
//! The argument grammar is deliberately tiny and fully testable; see
//! [`Command::parse`].

use crate::revlogic::{benchmarks, cost, real, spec_format, GateLibrary, Spec};
use crate::synth::{
    equivalence, permuted, synthesize, Engine, SynthesisOptions,
};
use std::time::Duration;

/// A parsed command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `synth` / `bench`: run exact synthesis.
    Synth {
        /// Path to a `.spec` file, or a benchmark name for `bench`.
        source: Source,
        /// Synthesis configuration.
        config: SynthConfig,
    },
    /// `simulate <file.real> <bits>`.
    Simulate {
        /// Circuit file.
        path: String,
        /// Input assignment, e.g. `1011` (line 1 is the rightmost bit).
        input: String,
    },
    /// `cost <file.real>`.
    Cost {
        /// Circuit file.
        path: String,
    },
    /// `check <a.real> <b.real>`.
    Check {
        /// First circuit.
        a: String,
        /// Second circuit.
        b: String,
    },
    /// `spec <file.real>`.
    SpecOf {
        /// Circuit file.
        path: String,
    },
    /// `list`.
    List,
    /// `help` (also `-h`, `--help`).
    Help,
}

/// Where the specification comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Source {
    /// A `.spec` file path.
    File(String),
    /// A built-in benchmark name.
    Benchmark(String),
}

/// Options accepted by `synth` / `bench`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynthConfig {
    /// Decision engine (`--engine bdd|qbf|sat`).
    pub engine: Engine,
    /// Gate library (`--library mct|mct+mcf|mct+p|all`).
    pub library: String,
    /// `--mixed-polarity`.
    pub mixed_polarity: bool,
    /// `--output-permutation`.
    pub output_permutation: bool,
    /// `--heuristic` — transformation-based synthesis (fast, non-minimal;
    /// completely specified functions only).
    pub heuristic: bool,
    /// `--max-depth N`.
    pub max_depth: u32,
    /// `--timeout SECS`.
    pub timeout: Option<u64>,
    /// `--all` — print every minimal circuit, not just the cheapest.
    pub all: bool,
    /// `-o FILE` — write the best circuit to FILE instead of stdout.
    pub output: Option<String>,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            engine: Engine::Bdd,
            library: "mct".to_string(),
            mixed_polarity: false,
            output_permutation: false,
            heuristic: false,
            max_depth: 32,
            timeout: None,
            all: false,
            output: None,
        }
    }
}

impl SynthConfig {
    /// Resolves the library flag.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown library names.
    pub fn gate_library(&self) -> Result<GateLibrary, String> {
        let base = match self.library.as_str() {
            "mct" => GateLibrary::mct(),
            "mct+mcf" => GateLibrary::mct_mcf(),
            "mct+p" => GateLibrary::mct_peres(),
            "all" | "mct+mcf+p" => GateLibrary::all(),
            other => return Err(format!("unknown library `{other}`")),
        };
        Ok(if self.mixed_polarity {
            base.with_mixed_polarity()
        } else {
            base
        })
    }

    /// Builds the engine options.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown library names.
    pub fn options(&self) -> Result<SynthesisOptions, String> {
        let mut o = SynthesisOptions::new(self.gate_library()?, self.engine)
            .with_max_depth(self.max_depth);
        if let Some(secs) = self.timeout {
            o = o.with_time_budget(Duration::from_secs(secs));
        }
        Ok(o)
    }
}

/// Usage text.
pub const USAGE: &str = "\
qsyn — exact synthesis of reversible logic (Wille et al., DATE 2008)

USAGE:
  qsyn synth <file.spec> [OPTIONS]     synthesize a truth-table specification
  qsyn bench <name> [OPTIONS]          synthesize a built-in benchmark
  qsyn simulate <file.real> <bits>     run a circuit on one input
  qsyn cost <file.real>                gate count and quantum cost
  qsyn check <a.real> <b.real>         equivalence check (with counterexample)
  qsyn spec <file.real>                truth table of a circuit
  qsyn list                            list built-in benchmarks

OPTIONS (synth/bench):
  --engine bdd|qbf|sat       decision engine           [default: bdd]
  --library mct|mct+mcf|mct+p|all                      [default: mct]
  --mixed-polarity           allow negative-control Toffoli gates
  --output-permutation       allow free output-line relabeling
  --heuristic                transformation-based synthesis (fast, non-minimal)
  --max-depth N              depth cap                 [default: 32]
  --timeout SECS             soft wall-clock budget
  --all                      print every minimal circuit
  -o FILE                    write the cheapest circuit to FILE
";

impl Command {
    /// Parses a command line (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown subcommands, unknown
    /// flags or missing arguments.
    pub fn parse<I, S>(args: I) -> Result<Command, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = args.into_iter().map(Into::into);
        let sub = match args.next() {
            None => return Ok(Command::Help),
            Some(s) => s,
        };
        match sub.as_str() {
            "help" | "-h" | "--help" => Ok(Command::Help),
            "list" => Ok(Command::List),
            "simulate" => {
                let path = args.next().ok_or("simulate: missing circuit file")?;
                let input = args.next().ok_or("simulate: missing input bits")?;
                reject_extra(args)?;
                Ok(Command::Simulate { path, input })
            }
            "cost" => {
                let path = args.next().ok_or("cost: missing circuit file")?;
                reject_extra(args)?;
                Ok(Command::Cost { path })
            }
            "check" => {
                let a = args.next().ok_or("check: missing first circuit")?;
                let b = args.next().ok_or("check: missing second circuit")?;
                reject_extra(args)?;
                Ok(Command::Check { a, b })
            }
            "spec" => {
                let path = args.next().ok_or("spec: missing circuit file")?;
                reject_extra(args)?;
                Ok(Command::SpecOf { path })
            }
            "synth" | "bench" => {
                let target = args
                    .next()
                    .ok_or_else(|| format!("{sub}: missing specification"))?;
                let source = if sub == "synth" {
                    Source::File(target)
                } else {
                    Source::Benchmark(target)
                };
                let mut config = SynthConfig::default();
                let mut args = args.peekable();
                while let Some(flag) = args.next() {
                    match flag.as_str() {
                        "--engine" => {
                            let v = args.next().ok_or("--engine needs a value")?;
                            config.engine = match v.as_str() {
                                "bdd" => Engine::Bdd,
                                "qbf" => Engine::Qbf,
                                "sat" => Engine::Sat,
                                other => return Err(format!("unknown engine `{other}`")),
                            };
                        }
                        "--library" => {
                            config.library = args.next().ok_or("--library needs a value")?;
                        }
                        "--mixed-polarity" => config.mixed_polarity = true,
                        "--output-permutation" => config.output_permutation = true,
                        "--heuristic" => config.heuristic = true,
                        "--max-depth" => {
                            let v = args.next().ok_or("--max-depth needs a value")?;
                            config.max_depth =
                                v.parse().map_err(|_| format!("bad depth `{v}`"))?;
                        }
                        "--timeout" => {
                            let v = args.next().ok_or("--timeout needs a value")?;
                            config.timeout =
                                Some(v.parse().map_err(|_| format!("bad timeout `{v}`"))?);
                        }
                        "--all" => config.all = true,
                        "-o" | "--output" => {
                            config.output = Some(args.next().ok_or("-o needs a file")?);
                        }
                        other => return Err(format!("unknown option `{other}`")),
                    }
                }
                Ok(Command::Synth { source, config })
            }
            other => Err(format!("unknown command `{other}` (try `qsyn help`)")),
        }
    }
}

fn reject_extra<I: Iterator<Item = String>>(mut args: I) -> Result<(), String> {
    match args.next() {
        Some(extra) => Err(format!("unexpected argument `{extra}`")),
        None => Ok(()),
    }
}

/// Executes a parsed command, writing human-readable output to `out`.
/// Returns the process exit code.
///
/// # Errors
///
/// I/O failures on `out` are surfaced as `Err`.
pub fn run(cmd: &Command, out: &mut dyn std::io::Write) -> std::io::Result<i32> {
    match cmd {
        Command::Help => {
            write!(out, "{USAGE}")?;
            Ok(0)
        }
        Command::List => {
            for b in benchmarks::suite() {
                writeln!(
                    out,
                    "{:<12} {} lines, {}",
                    b.name,
                    b.spec.lines(),
                    match b.kind {
                        benchmarks::BenchmarkKind::Complete => "completely specified",
                        benchmarks::BenchmarkKind::Incomplete => "incompletely specified",
                    }
                )?;
            }
            Ok(0)
        }
        Command::Simulate { path, input } => {
            let circuit = match load_circuit(path) {
                Ok(c) => c,
                Err(e) => return fail(out, &e),
            };
            let n = circuit.lines();
            if input.len() != n as usize || !input.chars().all(|c| c == '0' || c == '1') {
                return fail(out, &format!("input must be {n} binary digits"));
            }
            // Leftmost digit = highest line, consistent with .spec files.
            let mut bits = 0u32;
            for (i, ch) in input.chars().enumerate() {
                if ch == '1' {
                    bits |= 1 << (n as usize - 1 - i);
                }
            }
            let result = circuit.simulate(bits);
            let rendered: String = (0..n)
                .rev()
                .map(|l| if (result >> l) & 1 == 1 { '1' } else { '0' })
                .collect();
            writeln!(out, "{input} -> {rendered}")?;
            Ok(0)
        }
        Command::Cost { path } => {
            let circuit = match load_circuit(path) {
                Ok(c) => c,
                Err(e) => return fail(out, &e),
            };
            let (mct, mcf, peres) = circuit.gate_counts();
            writeln!(out, "lines:        {}", circuit.lines())?;
            writeln!(out, "gates:        {} (MCT {mct}, MCF {mcf}, Peres {peres})", circuit.len())?;
            writeln!(out, "quantum cost: {}", cost::circuit_cost(&circuit))?;
            writeln!(
                out,
                "NCV network:  {} elementary gates (zero-ancilla decomposition)",
                qsyn_revlogic::ncv::network_cost(&circuit)
            )?;
            Ok(0)
        }
        Command::Check { a, b } => {
            let (ca, cb) = match (load_circuit(a), load_circuit(b)) {
                (Ok(x), Ok(y)) => (x, y),
                (Err(e), _) | (_, Err(e)) => return fail(out, &e),
            };
            if ca.lines() != cb.lines() {
                return fail(out, "circuits have different line counts");
            }
            match equivalence::counterexample_sat(&ca, &cb) {
                None => {
                    debug_assert!(equivalence::equivalent_bdd(&ca, &cb));
                    writeln!(out, "EQUIVALENT")?;
                    Ok(0)
                }
                Some(cex) => {
                    let n = ca.lines();
                    let render = |v: u32| -> String {
                        (0..n)
                            .rev()
                            .map(|l| if (v >> l) & 1 == 1 { '1' } else { '0' })
                            .collect()
                    };
                    writeln!(out, "NOT EQUIVALENT")?;
                    writeln!(
                        out,
                        "counterexample: input {} -> {} vs {}",
                        render(cex),
                        render(ca.simulate(cex)),
                        render(cb.simulate(cex))
                    )?;
                    Ok(1)
                }
            }
        }
        Command::SpecOf { path } => {
            let circuit = match load_circuit(path) {
                Ok(c) => c,
                Err(e) => return fail(out, &e),
            };
            let spec = Spec::from_permutation(&circuit.permutation());
            write!(out, "{}", spec_format::write_spec(&spec))?;
            Ok(0)
        }
        Command::Synth { source, config } => run_synth(source, config, out),
    }
}

fn run_synth(
    source: &Source,
    config: &SynthConfig,
    out: &mut dyn std::io::Write,
) -> std::io::Result<i32> {
    let spec = match source {
        Source::File(path) => match std::fs::read_to_string(path) {
            Ok(text) => match spec_format::parse_spec(&text) {
                Ok(s) => s,
                Err(e) => return fail(out, &e.to_string()),
            },
            Err(e) => return fail(out, &format!("{path}: {e}")),
        },
        Source::Benchmark(name) => match benchmarks::by_name(name) {
            Some(b) => b.spec,
            None => return fail(out, &format!("unknown benchmark `{name}` (see `qsyn list`)")),
        },
    };
    let options = match config.options() {
        Ok(o) => o,
        Err(e) => return fail(out, &e),
    };
    if config.heuristic {
        let Some(perm) = spec.as_permutation() else {
            return fail(
                out,
                "--heuristic requires a completely specified (bijective) function",
            );
        };
        let circuit = crate::synth::transform::transformation_synthesis(&perm);
        writeln!(
            out,
            "heuristic realization: {} gates, quantum cost {} (no minimality guarantee)",
            circuit.len(),
            cost::circuit_cost(&circuit)
        )?;
        if let Some(path) = &config.output {
            std::fs::write(path, real::write_real(&circuit))?;
            writeln!(out, "wrote {path}")?;
        } else {
            write!(out, "{}", real::write_real(&circuit))?;
        }
        return Ok(0);
    }
    if config.output_permutation {
        match permuted::synthesize_with_output_permutation(&spec, &options) {
            Err(e) => fail(out, &e.to_string()),
            Ok(p) => {
                writeln!(
                    out,
                    "minimal gates: {} (output permutation {:?}), {} solutions, {:?}",
                    p.result.depth(),
                    p.permutation,
                    p.result.solutions().count(),
                    p.result.total_time()
                )?;
                emit_circuits(&p.result, config, out)
            }
        }
    } else {
        match synthesize(&spec, &options) {
            Err(e) => fail(out, &e.to_string()),
            Ok(r) => {
                let (lo, hi) = r.solutions().quantum_cost_range();
                writeln!(
                    out,
                    "minimal gates: {}, {} solutions, quantum cost {lo}..{hi}, {:?} ({} engine)",
                    r.depth(),
                    r.solutions().count(),
                    r.total_time(),
                    r.engine()
                )?;
                emit_circuits(&r, config, out)
            }
        }
    }
}

fn emit_circuits(
    result: &crate::synth::SynthesisResult,
    config: &SynthConfig,
    out: &mut dyn std::io::Write,
) -> std::io::Result<i32> {
    let best = result.solutions().best_by_quantum_cost();
    if let Some(path) = &config.output {
        std::fs::write(path, real::write_real(best))?;
        writeln!(out, "wrote {path}")?;
    } else if config.all {
        for (i, c) in result.solutions().circuits().iter().enumerate() {
            writeln!(out, "# solution {} (quantum cost {})", i + 1, cost::circuit_cost(c))?;
            write!(out, "{c}")?;
        }
    } else {
        write!(out, "{}", real::write_real(best))?;
    }
    Ok(0)
}

fn load_circuit(path: &str) -> Result<crate::revlogic::Circuit, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    real::parse_real(&text).map_err(|e| e.to_string())
}

fn fail(out: &mut dyn std::io::Write, message: &str) -> std::io::Result<i32> {
    writeln!(out, "error: {message}")?;
    Ok(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        Command::parse(args.iter().copied())
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse(&[]), Ok(Command::Help));
        assert_eq!(parse(&["--help"]), Ok(Command::Help));
    }

    #[test]
    fn parses_bench_with_options() {
        let cmd = parse(&[
            "bench",
            "3_17",
            "--engine",
            "sat",
            "--library",
            "mct+p",
            "--mixed-polarity",
            "--max-depth",
            "9",
            "--timeout",
            "5",
            "--all",
        ])
        .unwrap();
        let Command::Synth { source, config } = cmd else {
            panic!("expected synth");
        };
        assert_eq!(source, Source::Benchmark("3_17".into()));
        assert_eq!(config.engine, Engine::Sat);
        assert_eq!(config.library, "mct+p");
        assert!(config.mixed_polarity);
        assert_eq!(config.max_depth, 9);
        assert_eq!(config.timeout, Some(5));
        assert!(config.all);
        assert!(config.gate_library().unwrap().has_mixed_polarity());
    }

    #[test]
    fn rejects_unknown_flags_and_commands() {
        assert!(parse(&["bench", "3_17", "--wat"]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["bench", "3_17", "--engine", "magic"]).is_err());
        assert!(parse(&["simulate", "a.real"]).is_err());
        assert!(parse(&["cost", "a.real", "extra"]).is_err());
    }

    #[test]
    fn library_resolution() {
        let mut c = SynthConfig::default();
        assert_eq!(c.gate_library().unwrap().label(), "MCT");
        c.library = "all".into();
        assert_eq!(c.gate_library().unwrap().label(), "MCT+MCF+P");
        c.library = "bogus".into();
        assert!(c.gate_library().is_err());
    }

    #[test]
    fn list_prints_benchmarks() {
        let mut buf = Vec::new();
        assert_eq!(run(&Command::List, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("hwb4"));
        assert!(text.contains("alu-v3"));
    }

    #[test]
    fn bench_synthesis_end_to_end() {
        let cmd = parse(&["bench", "3_17"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("minimal gates: 6"), "{text}");
        assert!(text.contains(".begin"));
    }

    #[test]
    fn unknown_benchmark_fails_cleanly() {
        let cmd = parse(&["bench", "nope"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 2);
        assert!(String::from_utf8(buf).unwrap().contains("unknown benchmark"));
    }

    #[test]
    fn synth_from_spec_file_and_check_roundtrip() {
        let dir = std::env::temp_dir().join("qsyn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("xor.spec");
        // 2-line spec: x2 ^= x1 (a CNOT).
        std::fs::write(&spec_path, ".numvars 2\n.begin\n00 00\n01 11\n10 10\n11 01\n.end\n")
            .unwrap();
        let out_path = dir.join("xor.real");
        let cmd = parse(&[
            "synth",
            spec_path.to_str().unwrap(),
            "-o",
            out_path.to_str().unwrap(),
        ])
        .unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        // simulate 01 (x1 = 1) → 11.
        let sim = parse(&["simulate", out_path.to_str().unwrap(), "01"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&sim, &mut buf).unwrap(), 0);
        assert!(String::from_utf8(buf).unwrap().contains("01 -> 11"));
        // cost works.
        let cost_cmd = parse(&["cost", out_path.to_str().unwrap()]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cost_cmd, &mut buf).unwrap(), 0);
        // self-equivalence.
        let check = parse(&[
            "check",
            out_path.to_str().unwrap(),
            out_path.to_str().unwrap(),
        ])
        .unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&check, &mut buf).unwrap(), 0);
        assert!(String::from_utf8(buf).unwrap().contains("EQUIVALENT"));
        // spec extraction contains the truth table.
        let spec_cmd = parse(&["spec", out_path.to_str().unwrap()]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&spec_cmd, &mut buf).unwrap(), 0);
        assert!(String::from_utf8(buf).unwrap().contains("01 11"));
    }

    #[test]
    fn heuristic_flag_synthesizes_fast() {
        let cmd = parse(&["bench", "hwb4", "--heuristic"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("heuristic realization"), "{text}");
        assert!(text.contains(".begin"));
    }

    #[test]
    fn heuristic_rejects_incomplete_specs() {
        let cmd = parse(&["bench", "rd32-v0", "--heuristic"]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 2);
        assert!(String::from_utf8(buf)
            .unwrap()
            .contains("completely specified"));
    }

    #[test]
    fn output_permutation_flag_works() {
        // SWAP: free with output permutation.
        let dir = std::env::temp_dir().join("qsyn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("swap.spec");
        std::fs::write(
            &spec_path,
            ".numvars 2\n.begin\n00 00\n01 10\n10 01\n11 11\n.end\n",
        )
        .unwrap();
        let cmd = parse(&[
            "synth",
            spec_path.to_str().unwrap(),
            "--output-permutation",
        ])
        .unwrap();
        let mut buf = Vec::new();
        assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("minimal gates: 0"), "{text}");
    }
}
