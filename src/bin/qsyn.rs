//! The `qsyn` command-line tool; see [`qsyn::cli`] for the full grammar.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match qsyn::cli::Command::parse(args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    match qsyn::cli::run(&cmd, &mut stdout) {
        Ok(code) => ExitCode::from(u8::try_from(code).unwrap_or(2)),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
