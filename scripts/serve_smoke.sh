#!/usr/bin/env bash
# Serve-smoke: end-to-end check of the `qsyn serve` / `qsyn query` /
# `qsyn store` surface over a real TCP socket (CI runs this; it is also
# handy locally). The sequence mirrors the PR 6 acceptance criteria:
#
#   1. boot a daemon on an ephemeral port against a fresh store,
#   2. cold miss (engine), repeat (store hit), STATS counter check,
#   3. SIGKILL the daemon mid-flight and verify the store reopens
#      cleanly (`qsyn store verify`),
#   4. restart with `--preload`, prove the repeat answers with ZERO
#      engine invocations, and shut down over the wire.
#
# Usage: scripts/serve_smoke.sh   (expects target/release/qsyn; override
# with QSYN=path/to/qsyn)
set -euo pipefail

QSYN=${QSYN:-target/release/qsyn}
DIR=$(mktemp -d)
DAEMON=""
trap '[ -n "$DAEMON" ] && kill -9 "$DAEMON" 2>/dev/null; rm -rf "$DIR"' EXIT
STORE="$DIR/smoke.store"

wait_ready() {
  for _ in $(seq 1 150); do
    grep -q "listening on " "$1" && return 0
    sleep 0.2
  done
  echo "serve-smoke: daemon never became ready" >&2
  cat "$1" >&2
  return 1
}

step() { echo "serve-smoke: $*"; }

step "boot (fresh store)"
"$QSYN" serve 127.0.0.1:0 --store "$STORE" --jobs 1 >"$DIR/serve1.log" 2>&1 &
DAEMON=$!
wait_ready "$DIR/serve1.log"
ADDR=$(awk '/listening on /{print $3; exit}' "$DIR/serve1.log")

step "ping $ADDR"
"$QSYN" query "$ADDR" --ping

step "cold miss synthesizes"
"$QSYN" query "$ADDR" 3_17 | grep "(engine in"

step "repeat answers from the store"
"$QSYN" query "$ADDR" 3_17 | grep "(store in"

step "counters agree (1 engine invocation, 1 hit)"
STATS=$("$QSYN" query "$ADDR" --stats)
echo "$STATS"
echo "$STATS" | grep -q "engine invocations: 1"
echo "$STATS" | grep -q "1 hits"

step "SIGKILL the daemon"
kill -9 "$DAEMON"
wait "$DAEMON" 2>/dev/null || true
DAEMON=""

step "killed daemon's store verifies"
"$QSYN" store verify "$STORE"

step "restart with --preload on the survived store"
echo 3_17 >"$DIR/preload.list"
"$QSYN" serve 127.0.0.1:0 --store "$STORE" --preload "$DIR/preload.list" --jobs 1 \
  >"$DIR/serve2.log" 2>&1 &
DAEMON=$!
wait_ready "$DIR/serve2.log"
ADDR=$(awk '/listening on /{print $3; exit}' "$DIR/serve2.log")
grep -q "preloaded 1 jobs (0 failed)" "$DIR/serve2.log"

step "repeat after restart never touches an engine"
"$QSYN" query "$ADDR" 3_17 | grep "(store in"
STATS=$("$QSYN" query "$ADDR" --stats)
echo "$STATS"
echo "$STATS" | grep -q "engine invocations: 0"

step "shutdown over the wire"
"$QSYN" query "$ADDR" --shutdown
wait "$DAEMON" 2>/dev/null || true
DAEMON=""

echo "serve-smoke: ok"
