//! Workspace-level portfolio tests: canonical-spec cache properties and
//! batch-scheduler determinism.

use proptest::prelude::*;
use qsyn::cli::{run, Command};
use qsyn::portfolio::cache::{canonicalize, SpecCache};
use qsyn::portfolio::race::race_engines_permuted;
use qsyn::portfolio::read_journal;
use qsyn::portfolio::scheduler::{run_batch, BatchConfig, JobStatus};
use qsyn::revlogic::benchmarks::{random_incomplete_spec, random_permutation};
use qsyn::revlogic::{spec_format, GateLibrary, Spec};
use qsyn::synth::permuted::{permute_spec, synthesize_with_output_permutation};
use qsyn::synth::{Attempt, CancelToken, Engine, RetryPolicy, SynthesisOptions, SynthesisSession};

fn opts() -> SynthesisOptions {
    SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_max_depth(10)
}

/// All 6 permutations of 3 lines.
fn perms3() -> [[u32; 3]; 6] {
    [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ]
}

/// The cached circuit must reproduce the *requested* spec through the
/// returned output permutation, on every cared bit.
fn realizes_via_permutation(
    spec: &Spec,
    r: &qsyn::synth::permuted::PermutedSynthesisResult,
) -> bool {
    let c = &r.result.solutions().circuits()[0];
    (0..spec.num_rows() as u32).all(|row| {
        let out = c.simulate(row);
        let sr = spec.row(row);
        r.permutation
            .iter()
            .enumerate()
            .all(|(j, &p)| sr.care & (1 << j) == 0 || (out >> p) & 1 == (sr.value >> j) & 1)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite property: a cache hit simulates to the original spec. A
    /// random 3-line function is synthesized once, then every output
    /// permutation of it is answered from the cache — and each answer must
    /// realize the permuted request, at the same minimal depth.
    fn cache_hit_simulates_to_original_spec(seed in any::<u64>(), pidx in 0usize..6) {
        let spec = Spec::from_permutation(&random_permutation(3, seed));
        let cache = SpecCache::new();
        let first = cache.synthesize(&spec, &opts()).unwrap();
        prop_assert!(realizes_via_permutation(&spec, &first));
        let moved = permute_spec(&spec, &perms3()[pidx]).unwrap();
        let answer = cache.synthesize(&moved, &opts()).unwrap();
        let (hits, misses) = cache.stats();
        prop_assert_eq!((hits, misses), (1, 1));
        prop_assert!(realizes_via_permutation(&moved, &answer));
        prop_assert_eq!(answer.result.depth(), first.result.depth());
    }

    /// Satellite property: the cache key never conflates inequivalent
    /// specs. Two random specs (complete or not) share a canonical form iff
    /// one is an output permutation of the other.
    #[allow(clippy::needless_pass_by_value)]
    fn cache_key_never_conflates_inequivalent_specs(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        care in 400u32..1000,
    ) {
        let a = random_incomplete_spec(3, seed_a, care);
        let b = random_incomplete_spec(3, seed_b, 1000 - care + 400);
        let equivalent = perms3()
            .iter()
            .any(|p| permute_spec(&a, p).unwrap().rows() == b.rows());
        let same_key = canonicalize(&a).spec.rows() == canonicalize(&b).spec.rows();
        prop_assert_eq!(equivalent, same_key);
    }
}

/// Acceptance check: a parallel batch is identical to a sequential one.
#[test]
fn batch_with_four_workers_matches_sequential() {
    let jobs = || -> Vec<(String, Spec)> {
        (0..8u64)
            .map(|seed| {
                (
                    format!("rand{seed}"),
                    Spec::from_permutation(&random_permutation(3, seed * 11 + 3)),
                )
            })
            .collect()
    };
    let options = opts();
    let run_one =
        |spec: &Spec, token: &CancelToken, session: &mut SynthesisSession, _attempt: &Attempt| {
            let o = options.clone().with_cancel_token(token.clone());
            qsyn::synth::permuted::synthesize_with_output_permutation_in(spec, &o, session)
        };
    let digest = |workers: usize| -> Vec<(String, u32, u128, Vec<u32>)> {
        let config = BatchConfig {
            workers,
            per_job_timeout: None,
            retry: RetryPolicy::none(),
        };
        run_batch(jobs(), &config, None, run_one)
            .reports
            .into_iter()
            .map(|r| match r.status {
                JobStatus::Done(p) => (
                    r.name,
                    p.result.depth(),
                    p.result.solutions().count(),
                    p.permutation,
                ),
                other => panic!("{}: {other:?}", r.name),
            })
            .collect()
    };
    assert_eq!(digest(1), digest(4));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite property: killing a journaled batch at a random point
    /// and resuming yields a bit-identical merged result set. The kill is
    /// simulated by truncating the journal **text** at a random byte —
    /// covering both clean record boundaries and torn final records (and,
    /// as a byproduct, corrupt trailing garbage) — after which `--resume`
    /// must re-run exactly the lost jobs and reproduce every digest the
    /// uninterrupted run recorded.
    fn resume_after_kill_is_bit_identical(seed in any::<u64>(), cut_permille in 0u32..1000) {
        let dir = std::env::temp_dir().join(format!(
            "qsyn-resume-prop-{}-{seed}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mut list_text = String::new();
        for i in 0..3u64 {
            let spec = Spec::from_permutation(&random_permutation(3, seed ^ (i * 0x9e37)));
            let path = dir.join(format!("job{i}.spec"));
            std::fs::write(&path, spec_format::write_spec(&spec)).unwrap();
            list_text.push_str(&format!("{}\n", path.display()));
        }
        let list = dir.join("jobs.txt");
        std::fs::write(&list, list_text).unwrap();
        let journal = dir.join("runs.jsonl");
        let _ = std::fs::remove_file(&journal);

        let batch = |resume: bool| -> String {
            let mut args = vec![
                "batch".to_string(),
                list.to_str().unwrap().to_string(),
                "--journal".to_string(),
                journal.to_str().unwrap().to_string(),
                "--max-depth".to_string(),
                "10".to_string(),
            ];
            if resume {
                args.push("--resume".to_string());
            }
            let cmd = Command::parse(args).unwrap();
            let mut buf = Vec::new();
            assert_eq!(run(&cmd, &mut buf).unwrap(), 0);
            String::from_utf8(buf).unwrap()
        };

        batch(false);
        let full = read_journal(&journal).unwrap();
        prop_assert_eq!(full.len(), 3);

        // Kill: keep a random prefix of the journal bytes (re-cut to a
        // char boundary so the write below stays valid UTF-8).
        let text = std::fs::read_to_string(&journal).unwrap();
        let mut keep = text.len() * cut_permille as usize / 1000;
        while keep > 0 && !text.is_char_boundary(keep) {
            keep -= 1;
        }
        std::fs::write(&journal, &text[..keep]).unwrap();
        let survivors = read_journal(&journal).unwrap().len();

        let resumed_out = batch(true);
        prop_assert!(resumed_out.contains("3 jobs, 3 ok, 0 failed"), "{}", resumed_out);
        let resumed = read_journal(&journal).unwrap();
        prop_assert_eq!(resumed.len(), 3, "lost jobs re-ran: {} survived", survivors);
        let mut by_key: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
        for r in &resumed {
            by_key.insert(&r.key, &r.digest);
        }
        for r in &full {
            prop_assert_eq!(
                by_key.get(r.key.as_str()).copied(),
                Some(r.digest.as_str()),
                "job {} must reproduce its digest after resume",
                r.name
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The race composes with the cache: racing on a class representative and
/// replaying the hit yields the same depth as direct synthesis.
#[test]
fn raced_batch_through_the_cache_is_consistent() {
    let cache = SpecCache::new();
    let spec = Spec::from_permutation(&random_permutation(3, 42));
    let options = opts();
    let compute = |s: &Spec| {
        race_engines_permuted(s, &options)
            .map(|r| r.winner)
            .map_err(|e| e.into_synthesis_error())
    };
    let raced = cache.get_or_compute(&spec, compute).unwrap();
    let direct = synthesize_with_output_permutation(&spec, &options).unwrap();
    assert_eq!(raced.result.depth(), direct.result.depth());
    assert!(realizes_via_permutation(&spec, &raced));
    let moved = permute_spec(&spec, &[2, 0, 1]).unwrap();
    let hit = cache
        .get_or_compute(&moved, |_| panic!("must be a cache hit"))
        .unwrap();
    assert!(realizes_via_permutation(&moved, &hit));
    assert_eq!(cache.stats(), (1, 1));
}
