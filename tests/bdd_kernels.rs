//! Fused-vs-legacy kernel agreement: the fused ∀-AND `check()` (the
//! default since PR 3) must agree bit for bit — same minimal depth, same
//! solution count — with the legacy build-then-quantify path on the
//! Table 1 benchmark functions.

use qsyn::revlogic::{benchmarks, GateLibrary};
use qsyn::synth::{synthesize, Engine, SynthesisOptions};
use std::time::Duration;

/// The benchmarks small enough to synthesize in unit-test time.
const FAST_BENCHES: &[&str] = &["3_17", "rd32-v0", "rd32-v1", "decod24-v0", "decod24-v2"];

fn options(fused: bool) -> SynthesisOptions {
    SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_fused_quantification(fused)
}

#[test]
fn fused_and_legacy_agree_on_the_fast_suite() {
    for name in FAST_BENCHES {
        let b = benchmarks::by_name(name).expect("known benchmark");
        let fused = synthesize(&b.spec, &options(true)).unwrap_or_else(|e| panic!("{name}: {e}"));
        let legacy = synthesize(&b.spec, &options(false)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            (fused.depth(), fused.solutions().count()),
            (legacy.depth(), legacy.solutions().count()),
            "{name}: fused and legacy check() disagree"
        );
    }
}

/// The whole Table 1 set. The hard functions (hwb4, 4_49, the mod5/alu
/// families at depth ≥ 8) run for minutes in exact mode, so each side
/// gets a wall budget; a benchmark only counts when both sides finish.
/// The fast functions must never be skipped, so the test still fails
/// outright if a kernel regression makes them blow the budget.
#[test]
#[ignore = "minutes of wall clock; run with --ignored (CI bench tier)"]
fn fused_and_legacy_agree_on_the_full_table1_set() {
    const BUDGET: Duration = Duration::from_secs(60);
    let mut compared = Vec::new();
    let mut skipped = Vec::new();
    for b in benchmarks::suite() {
        let fused = synthesize(&b.spec, &options(true).with_time_budget(BUDGET));
        let legacy = synthesize(&b.spec, &options(false).with_time_budget(BUDGET));
        match (fused, legacy) {
            (Ok(f), Ok(l)) => {
                assert_eq!(
                    (f.depth(), f.solutions().count()),
                    (l.depth(), l.solutions().count()),
                    "{}: fused and legacy check() disagree",
                    b.name
                );
                compared.push(b.name);
            }
            _ => skipped.push(b.name),
        }
    }
    println!("compared: {compared:?}");
    println!("skipped (over budget): {skipped:?}");
    for name in FAST_BENCHES {
        assert!(
            compared.contains(name),
            "{name} is a fast benchmark and must fit the budget"
        );
    }
}
