//! End-to-end integration: benchmark suite → synthesis → verification →
//! file formats, across the public API of the whole workspace.

use qsyn::revlogic::{benchmarks, cost, real, spec_format, GateLibrary};
use qsyn::synth::{synthesize, Engine, SynthesisOptions};

/// The benchmarks small enough to synthesize in unit-test time.
const FAST_BENCHES: &[&str] = &["3_17", "rd32-v0", "rd32-v1", "decod24-v0", "decod24-v2"];

#[test]
fn bdd_engine_solves_the_fast_suite() {
    for name in FAST_BENCHES {
        let b = benchmarks::by_name(name).expect("known benchmark");
        let r = synthesize(
            &b.spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(r.depth() > 0, "{name} is not the identity");
        assert!(
            r.solutions().is_exhaustive(),
            "{name} should enumerate fully"
        );
        for c in r.solutions().circuits() {
            assert!(b.spec.is_realized_by(c), "{name}: circuit fails spec");
            assert_eq!(c.len(), r.depth() as usize);
        }
    }
}

#[test]
fn synthesized_circuits_roundtrip_through_real_format() {
    let b = benchmarks::by_name("3_17").unwrap();
    let r = synthesize(
        &b.spec,
        &SynthesisOptions::new(GateLibrary::all(), Engine::Bdd),
    )
    .unwrap();
    for c in r.solutions().circuits().iter().take(10) {
        let text = real::write_real(c);
        let parsed = real::parse_real(&text).expect("own output parses");
        assert!(parsed.equivalent(c));
        assert_eq!(cost::circuit_cost(&parsed), cost::circuit_cost(c));
    }
}

#[test]
fn specs_roundtrip_through_spec_format_and_resynthesis() {
    let b = benchmarks::by_name("rd32-v0").unwrap();
    let text = spec_format::write_spec(&b.spec);
    let reparsed = spec_format::parse_spec(&text).unwrap();
    let r1 = synthesize(
        &b.spec,
        &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
    )
    .unwrap();
    let r2 = synthesize(
        &reparsed,
        &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
    )
    .unwrap();
    assert_eq!(r1.depth(), r2.depth());
    assert_eq!(r1.solutions().count(), r2.solutions().count());
}

#[test]
fn minimal_depth_of_inverse_equals_original_for_mct() {
    // MCT gates are self-inverse, so reversing any realization of f gives
    // a realization of f⁻¹ of the same size — minimal depths must match.
    let b = benchmarks::by_name("3_17").unwrap();
    let perm = b.spec.as_permutation().unwrap();
    let inverse = qsyn::revlogic::Spec::from_permutation(&perm.inverse());
    let opts = SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd);
    let fwd = synthesize(&b.spec, &opts).unwrap();
    let bwd = synthesize(&inverse, &opts).unwrap();
    assert_eq!(fwd.depth(), bwd.depth());
    assert_eq!(fwd.solutions().count(), bwd.solutions().count());
}

#[test]
fn quantum_cost_selection_is_consistent() {
    let b = benchmarks::by_name("decod24-v0").unwrap();
    let r = synthesize(
        &b.spec,
        &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
    )
    .unwrap();
    let best = r.solutions().best_by_quantum_cost();
    let (min_qc, max_qc) = r.solutions().quantum_cost_range();
    assert_eq!(cost::circuit_cost(best), min_qc);
    assert!(min_qc <= max_qc);
    for c in r.solutions().circuits() {
        let qc = cost::circuit_cost(c);
        assert!((min_qc..=max_qc).contains(&qc));
    }
}

#[test]
fn peres_library_lowers_quantum_cost_when_it_helps() {
    // A spec that IS a Peres gate: MCT needs two gates (QC 6), MCT+P one
    // (QC 4).
    let peres_perm = qsyn::revlogic::Circuit::from_gates(3, [qsyn::revlogic::Gate::peres(0, 1, 2)])
        .permutation();
    let spec = qsyn::revlogic::Spec::from_permutation(&peres_perm);
    let mct = synthesize(
        &spec,
        &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
    )
    .unwrap();
    let with_peres = synthesize(
        &spec,
        &SynthesisOptions::new(GateLibrary::mct_peres(), Engine::Bdd),
    )
    .unwrap();
    assert_eq!(mct.depth(), 2);
    assert_eq!(with_peres.depth(), 1);
    assert_eq!(mct.solutions().quantum_cost_range().0, 6);
    assert_eq!(with_peres.solutions().quantum_cost_range().0, 4);
}

#[test]
fn suite_metadata_is_consistent() {
    let suite = benchmarks::suite();
    assert_eq!(suite.len(), 19);
    for b in &suite {
        assert!(b.spec.lines() >= 3);
        assert!(b.spec.lines() <= 6);
        match b.kind {
            benchmarks::BenchmarkKind::Complete => assert!(b.spec.is_complete()),
            benchmarks::BenchmarkKind::Incomplete => assert!(!b.spec.is_complete()),
        }
    }
}
