//! Cross-engine and cross-substrate agreement at the workspace level.

use qsyn::portfolio::race::{race_engines, RacerOutcome};
use qsyn::revlogic::{benchmarks::random_permutation, GateLibrary, Spec};
use qsyn::synth::{synthesize, Engine, QbfBackend, SatSelectEncoding, SynthesisOptions, VarOrder};

#[test]
fn all_engines_agree_on_random_3_line_functions() {
    for seed in 0..6u64 {
        let spec = Spec::from_permutation(&random_permutation(3, seed * 17 + 1));
        let mut depths = Vec::new();
        for engine in [Engine::Bdd, Engine::Qbf, Engine::Sat] {
            let r = synthesize(
                &spec,
                &SynthesisOptions::new(GateLibrary::mct(), engine).with_max_depth(10),
            )
            .unwrap_or_else(|e| panic!("seed {seed} {engine}: {e}"));
            for c in r.solutions().circuits() {
                assert!(spec.is_realized_by(c));
            }
            depths.push(r.depth());
        }
        assert!(
            depths.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: engines disagree: {depths:?}"
        );
    }
}

#[test]
fn engine_race_agrees_with_every_single_engine() {
    // The race's winner is whichever engine proves minimality first; the
    // result must nevertheless be exactly what any fixed engine reports.
    for seed in 0..4u64 {
        let spec = Spec::from_permutation(&random_permutation(3, seed * 23 + 5));
        let options = SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_max_depth(10);
        let raced = race_engines(&spec, &options).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let single = synthesize(&spec, &options).unwrap();
        assert_eq!(raced.winner.depth(), single.depth(), "seed {seed}");
        for c in raced.winner.solutions().circuits() {
            assert!(spec.is_realized_by(c), "seed {seed}");
        }
        assert_eq!(raced.reports.len(), 3, "seed {seed}");
        let wins = raced
            .reports
            .iter()
            .filter(|r| r.outcome == RacerOutcome::Won)
            .count();
        assert_eq!(wins, 1, "seed {seed}: exactly one winner");
        assert!(
            raced.reports.iter().all(|r| matches!(
                r.outcome,
                RacerOutcome::Won | RacerOutcome::Cancelled | RacerOutcome::FinishedLate
            )),
            "seed {seed}: no racer may fail on a realizable spec: {:?}",
            raced.reports
        );
    }
}

#[test]
fn sat_encodings_agree_on_3_lines() {
    for seed in 0..4u64 {
        let spec = Spec::from_permutation(&random_permutation(3, seed + 100));
        let mut depths = Vec::new();
        for enc in [SatSelectEncoding::OneHot, SatSelectEncoding::Binary] {
            let r = synthesize(
                &spec,
                &SynthesisOptions::new(GateLibrary::mct(), Engine::Sat)
                    .with_max_depth(10)
                    .with_sat_encoding(enc),
            )
            .unwrap();
            depths.push(r.depth());
        }
        assert_eq!(depths[0], depths[1], "seed {seed}");
    }
}

#[test]
fn qbf_backends_agree_on_2_lines() {
    for seed in 0..4u64 {
        let spec = Spec::from_permutation(&random_permutation(2, seed + 7));
        let exp = synthesize(
            &spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Qbf).with_max_depth(8),
        )
        .unwrap();
        let qd = synthesize(
            &spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Qbf)
                .with_max_depth(8)
                .with_qbf_backend(QbfBackend::Qdpll),
        )
        .unwrap();
        assert_eq!(exp.depth(), qd.depth(), "seed {seed}");
    }
}

#[test]
fn bdd_var_order_and_incrementality_do_not_change_results() {
    for seed in 0..4u64 {
        let spec = Spec::from_permutation(&random_permutation(3, seed + 31));
        let base = synthesize(
            &spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_max_depth(10),
        )
        .unwrap();
        for opts in [
            SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd)
                .with_max_depth(10)
                .with_var_order(VarOrder::YThenX),
            SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd)
                .with_max_depth(10)
                .with_incremental(false),
        ] {
            let other = synthesize(&spec, &opts).unwrap();
            assert_eq!(base.depth(), other.depth(), "seed {seed}");
            assert_eq!(
                base.solutions().count(),
                other.solutions().count(),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn libraries_form_a_depth_lattice() {
    // MCT+MCF+P depth ≤ min(MCT+MCF, MCT+P) ≤ MCT depth.
    for seed in 0..3u64 {
        let spec = Spec::from_permutation(&random_permutation(3, seed + 57));
        let depth = |lib: GateLibrary| {
            synthesize(
                &spec,
                &SynthesisOptions::new(lib, Engine::Bdd).with_max_depth(12),
            )
            .unwrap()
            .depth()
        };
        let mct = depth(GateLibrary::mct());
        let mcf = depth(GateLibrary::mct_mcf());
        let peres = depth(GateLibrary::mct_peres());
        let all = depth(GateLibrary::all());
        assert!(mcf <= mct, "seed {seed}");
        assert!(peres <= mct, "seed {seed}");
        assert!(all <= mcf.min(peres), "seed {seed}");
    }
}

#[test]
fn dedup_fredkin_preserves_depth_and_halves_fredkin_solutions() {
    // A pure swap: with ordered Fredkin targets there are two 1-gate
    // solutions (the functional twins), with dedup exactly one.
    let swap = Spec::from_permutation(&qsyn::revlogic::Permutation::from_fn(2, |v| {
        ((v & 1) << 1) | (v >> 1)
    }));
    let ordered = synthesize(
        &swap,
        &SynthesisOptions::new(GateLibrary::mct_mcf(), Engine::Bdd),
    )
    .unwrap();
    let dedup = synthesize(
        &swap,
        &SynthesisOptions::new(GateLibrary::mct_mcf().with_dedup_fredkin(), Engine::Bdd),
    )
    .unwrap();
    assert_eq!(ordered.depth(), 1);
    assert_eq!(dedup.depth(), 1);
    assert_eq!(ordered.solutions().count(), 2);
    assert_eq!(dedup.solutions().count(), 1);
}
