//! Integration tests for the extensions beyond the DATE 2008 paper:
//! mixed-polarity libraries, output-permutation synthesis, equivalence
//! checking, and incremental SAT under assumptions.

use qsyn::revlogic::{benchmarks, Circuit, Gate, GateLibrary, LineSet, Permutation, Spec};
use qsyn::sat::{Lit, Solver};
use qsyn::synth::equivalence::{counterexample_sat, equivalent_bdd};
use qsyn::synth::permuted::synthesize_with_output_permutation;
use qsyn::synth::{synthesize, Engine, SynthesisOptions};

#[test]
fn mixed_polarity_depth_is_a_lower_bound_refinement() {
    // MPMCT ⊇ MCT, so its minimal depth is never larger.
    for seed in 0..5u64 {
        let spec = Spec::from_permutation(&benchmarks::random_permutation(3, seed + 400));
        let plain = synthesize(
            &spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_max_depth(10),
        )
        .unwrap();
        let mixed = synthesize(
            &spec,
            &SynthesisOptions::new(GateLibrary::mct().with_mixed_polarity(), Engine::Bdd)
                .with_max_depth(10),
        )
        .unwrap();
        assert!(mixed.depth() <= plain.depth(), "seed {seed}");
        for c in mixed.solutions().circuits().iter().take(10) {
            assert!(spec.is_realized_by(c));
        }
    }
}

#[test]
fn mixed_polarity_circuits_roundtrip_through_real() {
    let spec = Spec::from_permutation(&benchmarks::random_permutation(3, 77));
    let r = synthesize(
        &spec,
        &SynthesisOptions::new(GateLibrary::mct().with_mixed_polarity(), Engine::Bdd)
            .with_max_depth(10),
    )
    .unwrap();
    for c in r.solutions().circuits().iter().take(5) {
        let text = qsyn::revlogic::real::write_real(c);
        let parsed = qsyn::revlogic::real::parse_real(&text).unwrap();
        assert!(parsed.equivalent(c));
    }
}

#[test]
fn output_permutation_on_benchmark_functions() {
    // rd32-v0 vs rd32-v1 differ exactly by output placement; with free
    // output permutation both must cost the same.
    let opts = SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_max_depth(8);
    let v0 = synthesize_with_output_permutation(&benchmarks::spec_rd32_v0(), &opts).unwrap();
    let v1 = synthesize_with_output_permutation(&benchmarks::spec_rd32_v1(), &opts).unwrap();
    assert_eq!(v0.result.depth(), v1.result.depth());
    // And neither exceeds its fixed-output depth.
    let fixed0 = synthesize(&benchmarks::spec_rd32_v0(), &opts).unwrap();
    assert!(v0.result.depth() <= fixed0.depth());
}

#[test]
fn equivalence_checkers_validate_synthesis_results() {
    let bench = benchmarks::by_name("decod24-v1").unwrap();
    let r = synthesize(
        &bench.spec,
        &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
    )
    .unwrap();
    let circuits = r.solutions().circuits();
    // decod24 is incompletely specified, so two minimal networks need NOT
    // be equivalent as total functions — but each must realize the spec,
    // and inequivalent pairs must disagree only on don't-care rows.
    for c in circuits.iter().take(6) {
        assert!(bench.spec.is_realized_by(c));
        if let Some(cex) = counterexample_sat(&circuits[0], c) {
            let row = bench.spec.row(cex);
            let diff = circuits[0].simulate(cex) ^ c.simulate(cex);
            assert_eq!(diff & row.care, 0, "circuits differ on a cared bit");
        }
    }
}

#[test]
fn equivalence_after_gate_commutation() {
    // Gates on disjoint lines commute.
    let a = Gate::toffoli(LineSet::from_iter([0]), 1);
    let b = Gate::not(2);
    let c1 = Circuit::from_gates(3, [a, b]);
    let c2 = Circuit::from_gates(3, [b, a]);
    assert!(equivalent_bdd(&c1, &c2));
    assert_eq!(counterexample_sat(&c1, &c2), None);
}

#[test]
fn incremental_sat_usable_for_repeated_queries() {
    // One solver, several assumption sets — the pattern an incremental
    // synthesis frontend would use.
    let mut solver = Solver::new(4);
    // x1 ⊕ x2, encoded directly.
    solver.add_clause([Lit::pos(0), Lit::pos(1)]);
    solver.add_clause([Lit::neg(0), Lit::neg(1)]);
    assert!(solver.solve_assuming(&[Lit::pos(0)]).is_sat());
    assert!(solver.solve_assuming(&[Lit::pos(1)]).is_sat());
    assert!(!solver.solve_assuming(&[Lit::pos(0), Lit::pos(1)]).is_sat());
    assert!(!solver.solve_assuming(&[Lit::neg(0), Lit::neg(1)]).is_sat());
    assert!(solver.solve().is_sat());
}

#[test]
fn permutation_of_spec_lines_preserves_minimal_depth_for_complete_funcs() {
    // Conjugating a complete function by a line swap cannot change its
    // minimal depth under a line-symmetric library.
    let base = benchmarks::random_permutation(3, 123);
    let spec = Spec::from_permutation(&base);
    // Swap lines 0 and 2 on inputs and outputs.
    let swap = |v: u32| (v & 0b010) | ((v & 1) << 2) | ((v >> 2) & 1);
    let conjugated =
        Spec::from_permutation(&Permutation::from_fn(3, |v| swap(base.image(swap(v)))));
    let opts = SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_max_depth(10);
    let d1 = synthesize(&spec, &opts).unwrap();
    let d2 = synthesize(&conjugated, &opts).unwrap();
    assert_eq!(d1.depth(), d2.depth());
    assert_eq!(d1.solutions().count(), d2.solutions().count());
}
