//! Cross-substrate integration: the BDD package, the SAT solver and the
//! QBF solvers checking each other through the workspace facade.

use qsyn::bdd::Manager;
use qsyn::qbf::{ExpansionSolver, QbfFormula, QdpllSolver, Quantifier};
use qsyn::sat::{dimacs, CnfBuilder, CnfFormula, Lit, SolveResult, Solver};

/// A small pseudo-random CNF family.
fn random_cnf(seed: u64, nvars: u32, nclauses: usize) -> CnfFormula {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut f = CnfFormula::new(nvars);
    for _ in 0..nclauses {
        let len = 1 + (next() % 3) as usize;
        let lits: Vec<Lit> = (0..len)
            .map(|_| Lit::new((next() % u64::from(nvars)) as u32, next() & 1 == 0))
            .collect();
        f.add_clause(lits);
    }
    f
}

/// Builds the BDD of a CNF formula.
fn cnf_to_bdd(m: &mut Manager, f: &CnfFormula) -> qsyn::bdd::Bdd {
    let mut acc = m.one();
    for c in f.clauses() {
        let mut clause = m.zero();
        for l in c.lits() {
            let lit = m.literal(l.var().0, l.is_positive());
            clause = m.or(clause, lit);
        }
        acc = m.and(acc, clause);
    }
    acc
}

#[test]
fn cdcl_agrees_with_bdd_on_random_cnf() {
    for seed in 0..40u64 {
        let f = random_cnf(seed, 10, 35);
        let mut m = Manager::new(10);
        let bdd = cnf_to_bdd(&mut m, &f);
        let bdd_sat = !bdd.is_zero();
        let mut solver = Solver::from_formula(&f);
        match solver.solve() {
            SolveResult::Sat(model) => {
                assert!(bdd_sat, "seed {seed}: CDCL sat, BDD unsat");
                assert!(f.eval(&model), "seed {seed}: bad model");
                assert!(m.eval(bdd, &model), "seed {seed}: model not in BDD");
            }
            SolveResult::Unsat => assert!(!bdd_sat, "seed {seed}: CDCL unsat, BDD sat"),
        }
    }
}

#[test]
fn sat_model_count_matches_bdd() {
    for seed in 0..20u64 {
        let f = random_cnf(seed + 1000, 8, 18);
        let mut m = Manager::new(8);
        let bdd = cnf_to_bdd(&mut m, &f);
        // Exhaustive check against direct evaluation.
        let brute: u128 = (0u32..1 << 8)
            .filter(|&bits| {
                let env: Vec<bool> = (0..8).map(|v| (bits >> v) & 1 == 1).collect();
                f.eval(&env)
            })
            .count() as u128;
        assert_eq!(m.sat_count(bdd, 8), brute, "seed {seed}");
    }
}

#[test]
fn qbf_solvers_agree_with_bdd_quantification() {
    for seed in 0..30u64 {
        let matrix = random_cnf(seed + 500, 6, 14);
        let mut qbf = QbfFormula::new(6);
        // Prefix ∃{0,1} ∀{2,3} ∃{4,5}.
        qbf.add_block(Quantifier::Exists, [0, 1]);
        qbf.add_block(Quantifier::Forall, [2, 3]);
        qbf.add_block(Quantifier::Exists, [4, 5]);
        for c in matrix.clauses() {
            qbf.add_clause(c.lits().iter().copied());
        }
        // BDD reference: quantify innermost-first.
        let mut m = Manager::new(6);
        let mut g = cnf_to_bdd(&mut m, &matrix);
        g = m.exists(g, &[4, 5]);
        g = m.forall(g, &[2, 3]);
        g = m.exists(g, &[0, 1]);
        let expected = g.is_one();
        assert_eq!(
            QdpllSolver::new(&qbf).solve(),
            expected,
            "seed {seed}: QDPLL disagrees with BDD"
        );
        assert_eq!(
            ExpansionSolver::new(&qbf).solve(),
            expected,
            "seed {seed}: expansion disagrees with BDD"
        );
    }
}

#[test]
fn tseitin_preserves_satisfiability_semantics() {
    // (a ⊕ b) ∧ (a ∨ c) built via the builder must be satisfied exactly by
    // assignments satisfying the original formula (projected to inputs).
    let mut b = CnfBuilder::new(3);
    let (a, x, c) = (b.input(0), b.input(1), b.input(2));
    let xor = b.xor(a, x);
    let or = b.or(a, c);
    let both = b.and(xor, or);
    b.assert_lit(both);
    for bits in 0u32..8 {
        let (va, vb, vc) = (bits & 1 == 1, bits & 2 != 0, bits & 4 != 0);
        let expected = (va ^ vb) && (va || vc);
        let mut f = b.formula().clone();
        f.add_clause([if va { a } else { !a }]);
        f.add_clause([if vb { x } else { !x }]);
        f.add_clause([if vc { c } else { !c }]);
        let mut solver = Solver::from_formula(&f);
        assert_eq!(solver.solve().is_sat(), expected, "bits {bits:03b}");
    }
}

#[test]
fn dimacs_roundtrip_preserves_solver_verdicts() {
    for seed in 0..10u64 {
        let f = random_cnf(seed + 77, 9, 30);
        let text = dimacs::write_dimacs(&f);
        let parsed = dimacs::parse_dimacs(&text).unwrap();
        let a = Solver::from_formula(&f).solve().is_sat();
        let b = Solver::from_formula(&parsed).solve().is_sat();
        assert_eq!(a, b, "seed {seed}");
    }
}
