//! Machine-checkable minimality certificates: for every depth below the
//! synthesized minimum, the SAT engine emits a clausal refutation that an
//! independent RUP checker verifies.

use qsyn::revlogic::{benchmarks, GateLibrary};
use qsyn::sat::proof::{check_rup, ProofCheck};
use qsyn::synth::{synthesize, Engine, SatEngine, SynthesisOptions};

#[test]
fn three_17_minimality_is_certified() {
    let bench = benchmarks::by_name("3_17").unwrap();
    let options = SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd);
    let result = synthesize(&bench.spec, &options).unwrap();
    assert_eq!(result.depth(), 6);

    // Certify the two depths below the minimum (the full range works the
    // same way; two keep the test fast).
    let mut engine = SatEngine::new(&bench.spec, &options);
    for d in [4u32, 5] {
        let (formula, proof) = engine
            .refutation_for_depth(d)
            .unwrap()
            .unwrap_or_else(|| panic!("depth {d} must be unrealizable"));
        assert_eq!(
            check_rup(&formula, &proof),
            ProofCheck::Refutation,
            "depth {d}: refutation must check"
        );
    }
    // And the minimum itself is realizable — no refutation exists.
    assert!(engine.refutation_for_depth(6).unwrap().is_none());
}

#[test]
fn certificates_work_for_incomplete_specs() {
    let bench = benchmarks::by_name("rd32-v0").unwrap();
    let options = SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd);
    let result = synthesize(&bench.spec, &options).unwrap();
    let min = result.depth();
    assert!(min >= 1);
    let mut engine = SatEngine::new(&bench.spec, &options);
    let (formula, proof) = engine
        .refutation_for_depth(min - 1)
        .unwrap()
        .expect("one below the minimum is unrealizable");
    assert_eq!(check_rup(&formula, &proof), ProofCheck::Refutation);
}

#[test]
fn tampered_proofs_are_rejected() {
    let bench = benchmarks::by_name("3_17").unwrap();
    let options = SynthesisOptions::new(GateLibrary::mct(), Engine::Sat);
    let mut engine = SatEngine::new(&bench.spec, &options);
    let (formula, mut proof) = engine.refutation_for_depth(3).unwrap().unwrap();
    // Remove everything but the final empty clause: no longer RUP.
    let last = proof.pop().unwrap();
    assert!(last.is_empty());
    let tampered = vec![last];
    assert!(matches!(
        check_rup(&formula, &tampered),
        ProofCheck::Invalid { .. }
    ));
}
