//! End-to-end validation of the quantum-cost story: synthesized minimal
//! circuits decompose into elementary-gate networks whose simulated
//! behaviour matches the specification, and whose size matches the cost
//! table used for the paper's Tables 2 and 3.

use qsyn::revlogic::{benchmarks, cost, ncv, GateLibrary};
use qsyn::synth::{synthesize, Engine, SynthesisOptions};

#[test]
fn synthesized_networks_simulate_to_the_spec() {
    let bench = benchmarks::by_name("3_17").unwrap();
    let r = synthesize(
        &bench.spec,
        &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
    )
    .unwrap();
    let perm = bench.spec.as_permutation().unwrap();
    for circuit in r.solutions().circuits() {
        let network = ncv::decompose_circuit(circuit);
        for input in 0..8u32 {
            assert_eq!(
                ncv::simulate_network(&network, 3, input),
                Some(perm.image(input)),
                "input {input:03b}"
            );
        }
    }
}

#[test]
fn table2_quantum_costs_match_ncv_network_sizes() {
    // On ≤ 4 lines every MCT gate has ≤ 3 controls, so the table cost and
    // the emitted zero-ancilla network size must agree exactly — the QC
    // column of Table 2 is backed by constructible networks.
    for name in ["3_17", "rd32-v0", "rd32-v1", "decod24-v0"] {
        let bench = benchmarks::by_name(name).unwrap();
        let r = synthesize(
            &bench.spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
        )
        .unwrap();
        for circuit in r.solutions().circuits().iter().take(20) {
            assert_eq!(
                cost::circuit_cost(circuit),
                ncv::network_cost(circuit),
                "{name}"
            );
        }
    }
}

#[test]
fn peres_quantum_cost_advantage_is_constructive() {
    // Table 3's Peres savings are real elementary-gate savings: the
    // 4-gate Peres network vs the 6-gate Toffoli+CNOT pair.
    let bench = benchmarks::by_name("rd32-v0").unwrap();
    let mct = synthesize(
        &bench.spec,
        &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
    )
    .unwrap();
    let peres = synthesize(
        &bench.spec,
        &SynthesisOptions::new(GateLibrary::mct_peres(), Engine::Bdd),
    )
    .unwrap();
    let mct_best = mct.solutions().quantum_cost_range().0;
    let peres_best = peres.solutions().quantum_cost_range().0;
    assert!(peres_best < mct_best, "{peres_best} !< {mct_best}");
    // And the advantage survives decomposition to elementary gates.
    let best = peres.solutions().best_by_quantum_cost();
    assert_eq!(ncv::network_cost(best), peres_best);
    for input in 0..16u32 {
        let network = ncv::decompose_circuit(best);
        let out = ncv::simulate_network(&network, 4, input).unwrap();
        assert_eq!(out, best.simulate(input));
    }
}

#[test]
fn best_solution_minimizes_elementary_gates_too() {
    let bench = benchmarks::by_name("decod24-v0").unwrap();
    let r = synthesize(
        &bench.spec,
        &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
    )
    .unwrap();
    let best = r.solutions().best_by_quantum_cost();
    let best_ncv = ncv::network_cost(best);
    for c in r.solutions().circuits() {
        assert!(ncv::network_cost(c) >= best_ncv);
    }
}
