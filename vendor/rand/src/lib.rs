//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! tiny API subset it actually uses: `StdRng::seed_from_u64` plus
//! `Rng::{gen, gen_range, gen_bool}`. The generator is xoshiro256**
//! seeded via SplitMix64 — statistically solid for test-workload
//! generation, *not* cryptographic. Seeded identically, it is fully
//! deterministic across platforms, which is all the test suite relies on.

#![warn(missing_docs)]

/// Random number generator front-end, mirroring `rand::Rng`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform sample from `range` (which must be non-empty).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        let (lo, hi_inclusive) = range.bounds();
        T::sample(self, lo, hi_inclusive)
    }

    /// `true` with probability `p` (0.0 ≤ `p` ≤ 1.0).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random (`rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

/// Integer types supporting uniform range sampling.
pub trait UniformInt: Copy {
    /// Widens to `u64` for sampling arithmetic.
    fn to_u64(self) -> u64;
    /// Narrows a sampled offset back to `Self`.
    fn from_u64(v: u64) -> Self;
    /// Uniform sample from `[lo, hi]` (inclusive).
    fn sample<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let span = hi.to_u64() - lo.to_u64();
        if span == u64::MAX {
            return Self::from_u64(rng.next_u64());
        }
        // Rejection sampling to avoid modulo bias.
        let span = span + 1;
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = rng.next_u64();
            if v < zone {
                return Self::from_u64(lo.to_u64() + v % span);
            }
        }
    }
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> $t {
                v as $t
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

/// Ranges usable with [`Rng::gen_range`] (`rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// `(low, high_inclusive)`; panics when empty.
    fn bounds(&self) -> (T, T);
}

impl<T: UniformInt + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn bounds(&self) -> (T, T) {
        assert!(self.start < self.end, "cannot sample empty range");
        (self.start, T::from_u64(self.end.to_u64() - 1))
    }
}

impl<T: UniformInt + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(&self) -> (T, T) {
        assert!(self.start() <= self.end(), "cannot sample empty range");
        (*self.start(), *self.end())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256** seeded via SplitMix64.
    ///
    /// Unlike the upstream `StdRng` (ChaCha12) this is not cryptographically
    /// secure; it is deterministic and fast, which is what the tests need.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(1u8..=3);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..300 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never sampled");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "suspicious bias: {heads}");
    }

    #[test]
    fn gen_produces_both_bools() {
        let mut rng = StdRng::seed_from_u64(3);
        let vals: Vec<bool> = (0..64).map(|_| rng.gen()).collect();
        assert!(vals.iter().any(|&b| b) && vals.iter().any(|&b| !b));
    }
}
