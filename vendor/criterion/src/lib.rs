//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! subset of the criterion API the `qsyn-bench` harnesses use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size`, `bench_with_input`, `finish`), [`Bencher::iter`],
//! [`BenchmarkId::new`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Statistics are simplified: each benchmark runs a short warm-up, then
//! `sample_size` timed iterations, and reports min / mean / max wall-clock
//! time per iteration. There is no outlier analysis, HTML report, or
//! baseline comparison — the point is that `cargo bench` compiles, runs and
//! prints comparable numbers offline.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Runs `routine` for a warm-up pass, then `sample_size` timed passes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<48} (no samples — routine never called iter)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().expect("non-empty");
        let max = *self.samples.iter().max().expect("non-empty");
        println!(
            "{id:<48} time: [{} {} {}]  ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// A two-part benchmark identifier, e.g. function label + input name.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new<F: fmt::Display, P: fmt::Display>(function: F, parameter: P) -> BenchmarkId {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark named `id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        mut routine: R,
    ) -> &mut Criterion {
        let mut b = Bencher::new(self.sample_size);
        routine(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        routine(&mut b);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        routine(&mut b, input);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// Ends the group (prints a separator; required by the upstream API).
    pub fn finish(self) {
        println!();
    }
}

/// Bundles benchmark functions into a runnable group, upstream-style:
/// `criterion_group!(benches, bench_a, bench_b);`
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher::new(5);
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.samples.len(), 5);
        assert_eq!(calls, 6, "one warm-up plus five timed passes");
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("id", 7), &7u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(4)), "4.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
