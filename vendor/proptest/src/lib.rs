//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! subset of the proptest API its test suites use: the [`Strategy`] trait
//! with `prop_map` / `prop_flat_map` / `prop_recursive` / `boxed`, range and
//! tuple strategies, [`collection::vec`], [`any`], the [`proptest!`] /
//! [`prop_oneof!`] / `prop_assert*` macros and [`ProptestConfig`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking** — a failing case panics with the generated inputs
//!   (via the ordinary assert messages) but is not minimized.
//! * **Deterministic seeding** — each `proptest!` test derives its RNG seed
//!   from the test name (override with `PROPTEST_SEED`), so runs are
//!   reproducible; `proptest-regressions` files are ignored.
//! * `PROPTEST_CASES` overrides the per-test case count globally.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Per-test configuration (`proptest::test_runner::Config` stand-in).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// The case count, honouring the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The test-case RNG (xoshiro256**, seeded via SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform sample below `n` (rejection sampling; `n` > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sample space");
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

/// Derives a per-test seed from the test path (FNV-1a), honouring the
/// `PROPTEST_SEED` env override. Used by the [`proptest!`] expansion.
pub fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse() {
            return v;
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of random values (`proptest::strategy::Strategy` stand-in).
///
/// Unlike upstream there is no value tree / shrinking: `generate` yields the
/// final value directly.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then draws from the strategy `f` builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values, retrying until `f` accepts one (caps at
    /// 1000 attempts, then panics — mirrors upstream's rejection limit).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Recursive strategies: `self` is the leaf case; `recurse` builds one
    /// level from the strategy for the level below. At each of the `depth`
    /// levels the generator picks the leaf or recurses with equal
    /// probability, so generated structures have mixed depths up to
    /// `depth`. `desired_size` / `expected_branch_size` are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = Union::new(vec![leaf.clone(), recurse(strat).boxed()]).boxed();
        }
        strat
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.whence);
    }
}

/// Uniform choice between strategies (the [`prop_oneof!`] building block).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty), sampled uniformly.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.arms.len() as u64) as usize;
        self.arms[k].generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u64) - (*self.start() as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                self.start() + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $S:ident),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (0 S0, 1 S1)
    (0 S0, 1 S1, 2 S2)
    (0 S0, 1 S1, 2 S2, 3 S3)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4)
}

/// Types with a canonical "any value" strategy (`proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for primitives.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! impl_any {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }

        impl Arbitrary for $t {
            type Strategy = Any<$t>;

            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}
impl_any! {
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
}

/// The canonical strategy for `T` — e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification for [`vec`]; converts from `usize`,
    /// `Range<usize>` and `RangeInclusive<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` random inputs.
///
/// An optional leading `#![proptest_config(expr)]` sets the configuration
/// for every test in the block.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::seed_from_u64($crate::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for __case in 0..__config.effective_cases() {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u8..=3).generate(&mut rng);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = TestRng::seed_from_u64(2);
        let strat = (0u32..10, any::<bool>()).prop_map(|(n, b)| if b { n + 100 } else { n });
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v < 10 || (100..110).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::seed_from_u64(3);
        let strat = collection::vec(0u32..5, 2..=4);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = TestRng::seed_from_u64(4);
        let strat = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(strat.generate(&mut rng) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Debug)]
        enum E {
            Leaf(u32),
            Pair(Box<E>, Box<E>),
        }
        fn depth(e: &E) -> u32 {
            match e {
                E::Leaf(_) => 0,
                E::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        fn max_leaf(e: &E) -> u32 {
            match e {
                E::Leaf(v) => *v,
                E::Pair(a, b) => max_leaf(a).max(max_leaf(b)),
            }
        }
        let strat = (0u32..4)
            .prop_map(E::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| E::Pair(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::seed_from_u64(5);
        let values: Vec<E> = (0..300).map(|_| strat.generate(&mut rng)).collect();
        let depths: Vec<u32> = values.iter().map(depth).collect();
        assert!(depths.iter().all(|&d| d <= 4));
        assert!(depths.contains(&0));
        assert!(depths.iter().any(|&d| d >= 2));
        assert!(values.iter().all(|e| max_leaf(e) < 4));
    }

    #[test]
    fn flat_map_threads_the_outer_value() {
        let strat = (2u32..=5).prop_flat_map(|n| (0u32..n).prop_map(move |v| (n, v)));
        let mut rng = TestRng::seed_from_u64(6);
        for _ in 0..200 {
            let (n, v) = strat.generate(&mut rng);
            assert!(v < n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, config and asserts all expand.
        fn macro_smoke_test(a in 0u32..50, b in any::<bool>()) {
            prop_assert!(a < 50);
            prop_assert_eq!(u32::from(b) * 2, u32::from(b) + u32::from(b));
        }
    }
}
