//! Repo-specific lint pass.
//!
//! Clippy covers general Rust hygiene; these rules encode *workspace
//! policy* that no off-the-shelf lint expresses:
//!
//! * **no-unwrap** — bare `.unwrap()` is banned in non-test library code.
//!   Synthesis runs for minutes; an `unwrap` turns a recoverable condition
//!   into a lost run. Use `?`, a typed error, or `.expect("reason")` where
//!   the invariant is real (and then the expect budget below applies).
//! * **no-expect** — `.expect(` is rationed by a per-file *ratchet
//!   baseline* (`xtask/lint-baseline.txt`): existing uses are grandfathered,
//!   new ones fail the build. Regenerate with `--update-baseline` after
//!   removing uses to ratchet the budget down.
//! * **relaxed-ordering** — `Ordering::Relaxed` is allowed only in the
//!   allowlisted statistics counters of `crates/portfolio/src/cache.rs`;
//!   everywhere else Acquire/Release/SeqCst must be chosen deliberately.
//! * **no-process-exit** — `process::exit` skips destructors (worker-pool
//!   joins, cache flushes) and is allowed only in `bin/` targets and
//!   xtask itself.
//! * **no-catch-unwind** — panic isolation is the batch scheduler's job:
//!   it pairs `catch_unwind` with panic-context capture, manager
//!   quarantine and the retry supervisor. A `catch_unwind` anywhere else
//!   silently swallows a broken invariant. Files with a legitimate
//!   supervisor role are listed in `xtask/catch-unwind-allowlist.txt`.
//!
//! A finding on a line ending with `// lint: allow(<rule>)` is waived.
//! Test code is exempt: `#[cfg(test)]` regions (tracked by brace
//! matching), `*_tests.rs` / `tests.rs` files (included only under
//! `#[cfg(test)]` by convention here), and anything under `tests/`.
//! The scanner masks comments and string literals before matching, so
//! prose mentioning `.unwrap()` does not count.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const BASELINE_FILE: &str = "xtask/lint-baseline.txt";

/// Files permitted to call `std::panic::catch_unwind`, one per line.
const CATCH_UNWIND_ALLOWLIST_FILE: &str = "xtask/catch-unwind-allowlist.txt";

/// Files in which `Ordering::Relaxed` is permitted (pure statistics
/// counters where staleness is harmless). The fault plane's hot path
/// qualifies: `fetch_add` is exact under any ordering, and arming
/// happens-before the work it perturbs via thread spawn. The serve
/// metrics block qualifies for the same reason: hit/miss counters and
/// histogram buckets are reporting-only, and `fetch_add` loses nothing
/// under relaxed ordering.
const RELAXED_ALLOWLIST: &[&str] = &[
    "crates/portfolio/src/cache.rs",
    "crates/faults/src/lib.rs",
    "crates/serve/src/metrics.rs",
];

/// Directories scanned for library code, relative to the workspace root.
const SCAN_ROOTS: &[&str] = &["crates", "src"];

/// Runs the lint pass over `root`; with `update_baseline`, rewrites the
/// expect baseline to the current counts instead of checking against it.
pub fn run(root: &Path, update_baseline: bool) -> ExitCode {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        collect_rs_files(&root.join(scan), &mut files);
    }
    files.sort();

    let catch_unwind_allow = match load_allowlist(&root.join(CATCH_UNWIND_ALLOWLIST_FILE)) {
        Ok(list) => list,
        Err(e) => {
            eprintln!("lint: cannot read {CATCH_UNWIND_ALLOWLIST_FILE}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut findings = Vec::new();
    let mut expect_counts: BTreeMap<String, usize> = BTreeMap::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lint: cannot read {rel}: {e}");
                return ExitCode::from(2);
            }
        };
        let expects = scan_file(&rel, &source, &catch_unwind_allow, &mut findings);
        if expects > 0 {
            expect_counts.insert(rel, expects);
        }
    }

    if update_baseline {
        let mut out = String::from(
            "# Per-file budget of `.expect(` calls in non-test library code.\n\
             # Regenerate with: cargo xtask lint --update-baseline\n",
        );
        for (file, count) in &expect_counts {
            let _ = writeln!(out, "{count} {file}");
        }
        if let Err(e) = std::fs::write(root.join(BASELINE_FILE), out) {
            eprintln!("lint: cannot write {BASELINE_FILE}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "lint: baseline updated ({} files, {} expects)",
            expect_counts.len(),
            expect_counts.values().sum::<usize>()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match load_baseline(&root.join(BASELINE_FILE)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("lint: cannot read {BASELINE_FILE}: {e} (run with --update-baseline)");
            return ExitCode::from(2);
        }
    };
    let mut failed = false;
    for (file, &count) in &expect_counts {
        let budget = baseline.get(file).copied().unwrap_or(0);
        if count > budget {
            eprintln!(
                "lint[no-expect]: {file} has {count} .expect() calls, budget is {budget} — \
                 use typed errors, or ratchet with --update-baseline if each is justified"
            );
            failed = true;
        } else if count < budget {
            println!(
                "lint: {file} is under its expect budget ({count} < {budget}); \
                 run --update-baseline to ratchet down"
            );
        }
    }
    for stale in baseline.keys().filter(|f| !expect_counts.contains_key(*f)) {
        println!("lint: baseline entry for {stale} is stale; run --update-baseline");
    }

    for f in &findings {
        eprintln!("{f}");
        failed = true;
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "lint: {} files clean ({} grandfathered expects)",
            files.len(),
            expect_counts.values().sum::<usize>()
        );
        ExitCode::SUCCESS
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Loads a one-path-per-line allowlist (`#` comments and blanks skipped).
/// A missing file is an empty allowlist.
fn load_allowlist(path: &Path) -> Result<Vec<String>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.to_string()),
    };
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect())
}

fn load_baseline(path: &Path) -> Result<BTreeMap<String, usize>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (count, file) = line
            .split_once(' ')
            .ok_or_else(|| format!("malformed baseline line: {line}"))?;
        let count: usize = count
            .parse()
            .map_err(|_| format!("malformed baseline count: {line}"))?;
        map.insert(file.to_string(), count);
    }
    Ok(map)
}

/// One rule violation, formatted `lint[rule]: file:line: message`.
struct Finding {
    rule: &'static str,
    file: String,
    line: usize,
    message: &'static str,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lint[{}]: {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

/// `true` for files that hold test code by repo convention: `tests.rs`,
/// `*_tests.rs` (included under `#[cfg(test)] mod`), and `tests/` trees.
fn is_test_file(rel: &str) -> bool {
    let name = rel.rsplit('/').next().unwrap_or(rel);
    name == "tests.rs" || name.ends_with("_tests.rs") || rel.contains("/tests/")
}

/// `true` for binary-target files (`src/bin/...`), where process exits and
/// terminal unwraps on startup errors are accepted.
fn is_bin_file(rel: &str) -> bool {
    rel.contains("/bin/")
}

/// Scans one file, pushing findings; returns the number of counted
/// (non-test, non-waived) `.expect(` uses for the ratchet baseline.
fn scan_file(
    rel: &str,
    source: &str,
    catch_unwind_allow: &[String],
    out: &mut Vec<Finding>,
) -> usize {
    if is_test_file(rel) || is_bin_file(rel) {
        return 0;
    }
    let masked = mask_comments_and_strings(source);
    let test_lines = cfg_test_lines(&masked);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut expects = 0;

    for (i, line) in masked.lines().enumerate() {
        if test_lines.get(i).copied().unwrap_or(false) {
            continue;
        }
        let raw = raw_lines.get(i).copied().unwrap_or("");
        let waived = |rule: &str| raw.contains(&format!("lint: allow({rule})"));
        let lineno = i + 1;

        if line.contains(".unwrap()") && !waived("no-unwrap") {
            out.push(Finding {
                rule: "no-unwrap",
                file: rel.to_string(),
                line: lineno,
                message: "bare .unwrap() in library code — use ?, a typed error, or .expect()",
            });
        }
        if !waived("no-expect") {
            expects += line.matches(".expect(").count();
        }
        if line.contains("Ordering::Relaxed")
            && !RELAXED_ALLOWLIST.contains(&rel)
            && !waived("relaxed-ordering")
        {
            out.push(Finding {
                rule: "relaxed-ordering",
                file: rel.to_string(),
                line: lineno,
                message: "Ordering::Relaxed outside the allowlist — justify Acquire/Release/SeqCst",
            });
        }
        if line.contains("process::exit") && !waived("no-process-exit") {
            out.push(Finding {
                rule: "no-process-exit",
                file: rel.to_string(),
                line: lineno,
                message: "process::exit skips destructors — return ExitCode from main instead",
            });
        }
        if line.contains("catch_unwind")
            && !catch_unwind_allow.iter().any(|f| f == rel)
            && !waived("no-catch-unwind")
        {
            out.push(Finding {
                rule: "no-catch-unwind",
                file: rel.to_string(),
                line: lineno,
                message: "catch_unwind outside the designated supervisors swallows broken \
                          invariants — let the batch scheduler isolate panics, or add the file \
                          to xtask/catch-unwind-allowlist.txt with a justification",
            });
        }
    }
    expects
}

/// Replaces the contents of comments, string literals and char literals
/// with spaces, preserving line structure so line numbers survive.
fn mask_comments_and_strings(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;

    // Emits `b` or a space for non-newline bytes inside masked regions.
    fn push_masked(out: &mut Vec<u8>, b: u8) {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    push_masked(&mut out, bytes[i]);
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        push_masked(&mut out, bytes[i]);
                        push_masked(&mut out, bytes[i + 1]);
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        push_masked(&mut out, bytes[i]);
                        push_masked(&mut out, bytes[i + 1]);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        push_masked(&mut out, bytes[i]);
                        i += 1;
                    }
                }
            }
            b'r' if matches!(bytes.get(i + 1), Some(b'"' | b'#')) => {
                // Raw string r"..." / r#"..."#.
                let mut j = i + 1;
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    out.push(b'r');
                    out.extend(std::iter::repeat_n(b'#', hashes));
                    out.push(b'"');
                    i = j + 1;
                    'raw: while i < bytes.len() {
                        if bytes[i] == b'"' {
                            let close = (1..=hashes).all(|k| bytes.get(i + k) == Some(&b'#'));
                            if close {
                                out.push(b'"');
                                out.extend(std::iter::repeat_n(b'#', hashes));
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        push_masked(&mut out, bytes[i]);
                        i += 1;
                    }
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            b'"' => {
                out.push(b'"');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' && i + 1 < bytes.len() {
                        push_masked(&mut out, bytes[i]);
                        push_masked(&mut out, bytes[i + 1]);
                        i += 2;
                    } else if bytes[i] == b'"' {
                        out.push(b'"');
                        i += 1;
                        break;
                    } else {
                        push_masked(&mut out, bytes[i]);
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal or lifetime. A char literal closes with a
                // quote one or two (escaped) positions later; a lifetime
                // has no closing quote.
                let close = if bytes.get(i + 1) == Some(&b'\\') {
                    // '\n', '\'', '\\', '\x7f', '\u{...}'
                    (i + 2..bytes.len().min(i + 12)).find(|&k| bytes[k] == b'\'')
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    Some(i + 2)
                } else {
                    None
                };
                if let Some(end) = close {
                    out.push(b'\'');
                    for &c in &bytes[i + 1..end] {
                        push_masked(&mut out, c);
                    }
                    out.push(b'\'');
                    i = end + 1;
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Per-line flags marking `#[cfg(test)]` items (attribute through matching
/// closing brace), computed on masked source.
fn cfg_test_lines(masked: &str) -> Vec<bool> {
    let lines: Vec<&str> = masked.lines().collect();
    let mut flags = vec![false; lines.len()];
    let bytes = masked.as_bytes();

    // Byte offset -> line index.
    let mut line_of = Vec::with_capacity(bytes.len() + 1);
    let mut ln = 0usize;
    for &b in bytes {
        line_of.push(ln);
        if b == b'\n' {
            ln += 1;
        }
    }
    line_of.push(ln);

    let needle = b"#[cfg(test)]";
    let mut i = 0;
    while i + needle.len() <= bytes.len() {
        if &bytes[i..i + needle.len()] != needle {
            i += 1;
            continue;
        }
        let start_line = line_of[i];
        // Find the item's opening brace, then its match. A `;` before any
        // `{` means the item is brace-less (e.g. `mod prop_tests;`): the
        // attribute applies to an out-of-line module whose *file* is
        // handled by `is_test_file`.
        let mut j = i + needle.len();
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        let end = match open {
            Some(open_at) => {
                let mut depth = 0usize;
                let mut k = open_at;
                loop {
                    if k >= bytes.len() {
                        break k;
                    }
                    match bytes[k] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break k;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            None => j,
        };
        let end_line = line_of[end.min(line_of.len() - 1)];
        for f in flags.iter_mut().take(end_line + 1).skip(start_line) {
            *f = true;
        }
        i = end + 1;
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_strings() {
        let src = "let a = \"x.unwrap()\"; // call .unwrap() here\nlet b = 1;\n";
        let masked = mask_comments_and_strings(src);
        assert!(!masked.contains(".unwrap()"));
        assert!(masked.contains("let a = \""));
        assert!(masked.contains("let b = 1;"));
        assert_eq!(masked.lines().count(), src.lines().count());
    }

    #[test]
    fn masking_handles_raw_strings_and_chars() {
        let src = "let s = r#\"a \" .unwrap() \"#; let c = '\\''; let l: &'static str = \"\";";
        let masked = mask_comments_and_strings(src);
        assert!(!masked.contains(".unwrap()"));
        assert!(masked.contains("let l: &'static str"));
    }

    #[test]
    fn masking_handles_nested_block_comments() {
        let src = "/* outer /* inner .unwrap() */ still comment */ let x = 1;";
        let masked = mask_comments_and_strings(src);
        assert!(!masked.contains(".unwrap()"));
        assert!(masked.contains("let x = 1;"));
    }

    #[test]
    fn cfg_test_region_is_tracked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let masked = mask_comments_and_strings(src);
        let flags = cfg_test_lines(&masked);
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn unwrap_in_test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let mut findings = Vec::new();
        scan_file("crates/foo/src/lib.rs", src, &[], &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn unwrap_in_library_code_is_flagged() {
        let src = "fn f() { x.unwrap(); }\n";
        let mut findings = Vec::new();
        scan_file("crates/foo/src/lib.rs", src, &[], &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "no-unwrap");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn expect_is_counted_not_flagged() {
        let src = "fn f() { x.expect(\"reason\"); y.expect(\"other\"); }\n";
        let mut findings = Vec::new();
        let expects = scan_file("crates/foo/src/lib.rs", src, &[], &mut findings);
        assert!(findings.is_empty());
        assert_eq!(expects, 2);
    }

    #[test]
    fn relaxed_ordering_respects_allowlist() {
        let src = "fn f() { c.load(Ordering::Relaxed); }\n";
        let mut findings = Vec::new();
        scan_file("crates/portfolio/src/cache.rs", src, &[], &mut findings);
        assert!(findings.is_empty(), "allowlisted file");
        scan_file("crates/bdd/src/manager.rs", src, &[], &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "relaxed-ordering");
    }

    #[test]
    fn process_exit_allowed_in_bin_only() {
        let src = "fn f() { std::process::exit(1); }\n";
        let mut findings = Vec::new();
        scan_file("crates/bench/src/bin/probe.rs", src, &[], &mut findings);
        assert!(findings.is_empty(), "bin target");
        scan_file("crates/bench/src/lib.rs", src, &[], &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "no-process-exit");
    }

    #[test]
    fn catch_unwind_respects_the_allowlist() {
        let src = "fn f() { let _ = std::panic::catch_unwind(|| {}); }\n";
        let allow = vec!["crates/portfolio/src/scheduler.rs".to_string()];
        let mut findings = Vec::new();
        scan_file(
            "crates/portfolio/src/scheduler.rs",
            src,
            &allow,
            &mut findings,
        );
        assert!(findings.is_empty(), "allowlisted supervisor");
        scan_file("crates/core/src/driver.rs", src, &allow, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "no-catch-unwind");
    }

    #[test]
    fn allowlist_parses_and_tolerates_absence() {
        let dir = std::env::temp_dir().join("qsyn-lint-allowlist-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("allow.txt");
        std::fs::write(&path, "# supervisors\ncrates/a/src/lib.rs\n\nsrc/cli.rs\n")
            .expect("write allowlist");
        let list = load_allowlist(&path).expect("parse");
        assert_eq!(list, vec!["crates/a/src/lib.rs", "src/cli.rs"]);
        let missing = dir.join("definitely-missing.txt");
        assert_eq!(
            load_allowlist(&missing).expect("missing ok"),
            Vec::<String>::new()
        );
    }

    #[test]
    fn inline_waiver_suppresses_a_finding() {
        let src = "fn f() { x.unwrap(); } // lint: allow(no-unwrap)\n";
        let mut findings = Vec::new();
        scan_file("crates/foo/src/lib.rs", src, &[], &mut findings);
        assert!(findings.is_empty());
        // The waiver is rule-specific.
        let src2 = "fn f() { x.unwrap(); } // lint: allow(no-expect)\n";
        scan_file("crates/foo/src/lib.rs", src2, &[], &mut findings);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn test_files_are_exempt_wholesale() {
        let src = "fn helper() { x.unwrap(); }\n";
        let mut findings = Vec::new();
        assert_eq!(
            scan_file("crates/bdd/src/oracle_tests.rs", src, &[], &mut findings),
            0
        );
        assert_eq!(
            scan_file("crates/foo/src/tests.rs", src, &[], &mut findings),
            0
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn doc_comment_mentions_do_not_count() {
        let src = "/// Call `.unwrap()` and `process::exit` with care.\nfn f() {}\n";
        let mut findings = Vec::new();
        scan_file("crates/foo/src/lib.rs", src, &[], &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn baseline_roundtrip() {
        let dir = std::env::temp_dir().join("qsyn-lint-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("baseline.txt");
        std::fs::write(&path, "# comment\n3 crates/a/src/lib.rs\n1 src/cli.rs\n")
            .expect("write baseline");
        let map = load_baseline(&path).expect("parse");
        assert_eq!(map.get("crates/a/src/lib.rs"), Some(&3));
        assert_eq!(map.get("src/cli.rs"), Some(&1));
        assert_eq!(map.len(), 2);
    }
}
