//! Repo-specific lint pass.
//!
//! Clippy covers general Rust hygiene; these rules encode *workspace
//! policy* that no off-the-shelf lint expresses:
//!
//! * **no-unwrap** — bare `.unwrap()` is banned in non-test library code.
//!   Synthesis runs for minutes; an `unwrap` turns a recoverable condition
//!   into a lost run. Use `?`, a typed error, or `.expect("reason")` where
//!   the invariant is real (and then the expect budget below applies).
//! * **no-expect** — `.expect(` is rationed by a per-file *ratchet
//!   baseline* (`xtask/lint-baseline.txt`): existing uses are grandfathered,
//!   new ones fail the build. Regenerate with `--update-baseline` after
//!   removing uses to ratchet the budget down.
//! * **relaxed-ordering** — `Ordering::Relaxed` is allowed only in the
//!   files listed in `xtask/relaxed-allowlist.txt` (pure statistics
//!   counters where staleness is harmless); everywhere else
//!   Acquire/Release/SeqCst must be chosen deliberately.
//! * **no-process-exit** — `process::exit` skips destructors (worker-pool
//!   joins, cache flushes) and is allowed only in `bin/` targets and
//!   xtask itself.
//! * **no-catch-unwind** — panic isolation is the batch scheduler's job:
//!   it pairs `catch_unwind` with panic-context capture, manager
//!   quarantine and the retry supervisor. A `catch_unwind` anywhere else
//!   silently swallows a broken invariant. Files with a legitimate
//!   supervisor role are listed in `xtask/catch-unwind-allowlist.txt`.
//!
//! A finding on a line ending with `// lint: allow(<rule>)` is waived.
//! Test code is exempt: `#[cfg(test)]` regions (tracked by brace
//! matching), `*_tests.rs` / `tests.rs` files (included only under
//! `#[cfg(test)]` by convention here), and anything under `tests/`.
//! The scanner masks comments and string literals before matching (see
//! the shared `lexer` module, also used by `concheck`), so prose
//! mentioning `.unwrap()` does not count.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;

use crate::lexer::{
    cfg_test_lines, collect_rs_files, is_bin_file, is_test_file, load_allowlist,
    mask_comments_and_strings, SCAN_ROOTS,
};

const BASELINE_FILE: &str = "xtask/lint-baseline.txt";

/// Files permitted to call `std::panic::catch_unwind`, one per line.
const CATCH_UNWIND_ALLOWLIST_FILE: &str = "xtask/catch-unwind-allowlist.txt";

/// Files in which `Ordering::Relaxed` is permitted, one per line with a
/// written justification (pure statistics counters where staleness is
/// harmless).
const RELAXED_ALLOWLIST_FILE: &str = "xtask/relaxed-allowlist.txt";

/// Runs the lint pass over `root`; with `update_baseline`, rewrites the
/// expect baseline to the current counts instead of checking against it.
pub fn run(root: &Path, update_baseline: bool) -> ExitCode {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        collect_rs_files(&root.join(scan), &mut files);
    }
    files.sort();

    let unwind_allow = match load_allowlist(&root.join(CATCH_UNWIND_ALLOWLIST_FILE)) {
        Ok(list) => list,
        Err(e) => {
            eprintln!("lint: cannot read {CATCH_UNWIND_ALLOWLIST_FILE}: {e}");
            return ExitCode::from(2);
        }
    };
    let relaxed_allow = match load_allowlist(&root.join(RELAXED_ALLOWLIST_FILE)) {
        Ok(list) => list,
        Err(e) => {
            eprintln!("lint: cannot read {RELAXED_ALLOWLIST_FILE}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut findings = Vec::new();
    let mut expect_counts: BTreeMap<String, usize> = BTreeMap::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lint: cannot read {rel}: {e}");
                return ExitCode::from(2);
            }
        };
        let expects = scan_file(&rel, &source, &unwind_allow, &relaxed_allow, &mut findings);
        if expects > 0 {
            expect_counts.insert(rel, expects);
        }
    }

    if update_baseline {
        let mut out = String::from(
            "# Per-file budget of `.expect(` calls in non-test library code.\n\
             # Regenerate with: cargo xtask lint --update-baseline\n",
        );
        for (file, count) in &expect_counts {
            let _ = writeln!(out, "{count} {file}");
        }
        if let Err(e) = std::fs::write(root.join(BASELINE_FILE), out) {
            eprintln!("lint: cannot write {BASELINE_FILE}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "lint: baseline updated ({} files, {} expects)",
            expect_counts.len(),
            expect_counts.values().sum::<usize>()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match load_baseline(&root.join(BASELINE_FILE)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("lint: cannot read {BASELINE_FILE}: {e} (run with --update-baseline)");
            return ExitCode::from(2);
        }
    };
    let mut failed = false;
    for (file, &count) in &expect_counts {
        let budget = baseline.get(file).copied().unwrap_or(0);
        if count > budget {
            eprintln!(
                "lint[no-expect]: {file} has {count} .expect() calls, budget is {budget} — \
                 use typed errors, or ratchet with --update-baseline if each is justified"
            );
            failed = true;
        } else if count < budget {
            println!(
                "lint: {file} is under its expect budget ({count} < {budget}); \
                 run --update-baseline to ratchet down"
            );
        }
    }
    for stale in baseline.keys().filter(|f| !expect_counts.contains_key(*f)) {
        println!("lint: baseline entry for {stale} is stale; run --update-baseline");
    }

    for f in &findings {
        eprintln!("{f}");
        failed = true;
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "lint: {} files clean ({} grandfathered expects)",
            files.len(),
            expect_counts.values().sum::<usize>()
        );
        ExitCode::SUCCESS
    }
}

fn load_baseline(path: &Path) -> Result<BTreeMap<String, usize>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (count, file) = line
            .split_once(' ')
            .ok_or_else(|| format!("malformed baseline line: {line}"))?;
        let count: usize = count
            .parse()
            .map_err(|_| format!("malformed baseline count: {line}"))?;
        map.insert(file.to_string(), count);
    }
    Ok(map)
}

/// One rule violation, formatted `lint[rule]: file:line: message`.
struct Finding {
    rule: &'static str,
    file: String,
    line: usize,
    message: &'static str,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lint[{}]: {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

/// Scans one file, pushing findings; returns the number of counted
/// (non-test, non-waived) `.expect(` uses for the ratchet baseline.
fn scan_file(
    rel: &str,
    source: &str,
    unwind_allow: &[String],
    relaxed_allow: &[String],
    out: &mut Vec<Finding>,
) -> usize {
    if is_test_file(rel) || is_bin_file(rel) {
        return 0;
    }
    let masked = mask_comments_and_strings(source);
    let test_lines = cfg_test_lines(&masked);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut expects = 0;

    for (i, line) in masked.lines().enumerate() {
        if test_lines.get(i).copied().unwrap_or(false) {
            continue;
        }
        let raw = raw_lines.get(i).copied().unwrap_or("");
        let waived = |rule: &str| raw.contains(&format!("lint: allow({rule})"));
        let lineno = i + 1;

        if line.contains(".unwrap()") && !waived("no-unwrap") {
            out.push(Finding {
                rule: "no-unwrap",
                file: rel.to_string(),
                line: lineno,
                message: "bare .unwrap() in library code — use ?, a typed error, or .expect()",
            });
        }
        if !waived("no-expect") {
            expects += line.matches(".expect(").count();
        }
        if line.contains("Ordering::Relaxed")
            && !relaxed_allow.iter().any(|f| f == rel)
            && !waived("relaxed-ordering")
        {
            out.push(Finding {
                rule: "relaxed-ordering",
                file: rel.to_string(),
                line: lineno,
                message: "Ordering::Relaxed outside xtask/relaxed-allowlist.txt — justify \
                          Acquire/Release/SeqCst, or allowlist the file with a justification",
            });
        }
        if line.contains("process::exit") && !waived("no-process-exit") {
            out.push(Finding {
                rule: "no-process-exit",
                file: rel.to_string(),
                line: lineno,
                message: "process::exit skips destructors — return ExitCode from main instead",
            });
        }
        if line.contains("catch_unwind")
            && !unwind_allow.iter().any(|f| f == rel)
            && !waived("no-catch-unwind")
        {
            out.push(Finding {
                rule: "no-catch-unwind",
                file: rel.to_string(),
                line: lineno,
                message: "catch_unwind outside the designated supervisors swallows broken \
                          invariants — let the batch scheduler isolate panics, or add the file \
                          to xtask/catch-unwind-allowlist.txt with a justification",
            });
        }
    }
    expects
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: &str, src: &str, findings: &mut Vec<Finding>) -> usize {
        scan_file(rel, src, &[], &[], findings)
    }

    #[test]
    fn unwrap_in_test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let mut findings = Vec::new();
        scan("crates/foo/src/lib.rs", src, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn unwrap_in_library_code_is_flagged() {
        let src = "fn f() { x.unwrap(); }\n";
        let mut findings = Vec::new();
        scan("crates/foo/src/lib.rs", src, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "no-unwrap");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn expect_is_counted_not_flagged() {
        let src = "fn f() { x.expect(\"reason\"); y.expect(\"other\"); }\n";
        let mut findings = Vec::new();
        let expects = scan("crates/foo/src/lib.rs", src, &mut findings);
        assert!(findings.is_empty());
        assert_eq!(expects, 2);
    }

    #[test]
    fn relaxed_ordering_respects_allowlist() {
        let src = "fn f() { c.load(Ordering::Relaxed); }\n";
        let allow = vec!["crates/portfolio/src/cache.rs".to_string()];
        let mut findings = Vec::new();
        scan_file(
            "crates/portfolio/src/cache.rs",
            src,
            &[],
            &allow,
            &mut findings,
        );
        assert!(findings.is_empty(), "allowlisted file");
        scan_file("crates/bdd/src/manager.rs", src, &[], &allow, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "relaxed-ordering");
    }

    #[test]
    fn process_exit_allowed_in_bin_only() {
        let src = "fn f() { std::process::exit(1); }\n";
        let mut findings = Vec::new();
        scan("crates/bench/src/bin/probe.rs", src, &mut findings);
        assert!(findings.is_empty(), "bin target");
        scan("crates/bench/src/lib.rs", src, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "no-process-exit");
    }

    #[test]
    fn catch_unwind_respects_the_allowlist() {
        let src = "fn f() { let _ = std::panic::catch_unwind(|| {}); }\n";
        let allow = vec!["crates/portfolio/src/scheduler.rs".to_string()];
        let mut findings = Vec::new();
        scan_file(
            "crates/portfolio/src/scheduler.rs",
            src,
            &allow,
            &[],
            &mut findings,
        );
        assert!(findings.is_empty(), "allowlisted supervisor");
        scan_file("crates/core/src/driver.rs", src, &allow, &[], &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "no-catch-unwind");
    }

    #[test]
    fn inline_waiver_suppresses_a_finding() {
        let src = "fn f() { x.unwrap(); } // lint: allow(no-unwrap)\n";
        let mut findings = Vec::new();
        scan("crates/foo/src/lib.rs", src, &mut findings);
        assert!(findings.is_empty());
        // The waiver is rule-specific.
        let src2 = "fn f() { x.unwrap(); } // lint: allow(no-expect)\n";
        scan("crates/foo/src/lib.rs", src2, &mut findings);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn test_files_are_exempt_wholesale() {
        let src = "fn helper() { x.unwrap(); }\n";
        let mut findings = Vec::new();
        assert_eq!(
            scan("crates/bdd/src/oracle_tests.rs", src, &mut findings),
            0
        );
        assert_eq!(scan("crates/foo/src/tests.rs", src, &mut findings), 0);
        assert!(findings.is_empty());
    }

    #[test]
    fn doc_comment_mentions_do_not_count() {
        let src = "/// Call `.unwrap()` and `process::exit` with care.\nfn f() {}\n";
        let mut findings = Vec::new();
        scan("crates/foo/src/lib.rs", src, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn baseline_roundtrip() {
        let dir = std::env::temp_dir().join("qsyn-lint-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("baseline.txt");
        std::fs::write(&path, "# comment\n3 crates/a/src/lib.rs\n1 src/cli.rs\n")
            .expect("write baseline");
        let map = load_baseline(&path).expect("parse");
        assert_eq!(map.get("crates/a/src/lib.rs"), Some(&3));
        assert_eq!(map.get("src/cli.rs"), Some(&1));
        assert_eq!(map.len(), 2);
    }
}
