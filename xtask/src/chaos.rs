//! `cargo xtask chaos` — deterministic fault-injection sweep.
//!
//! Builds the release binary with `--features faults`, runs the **full
//! Table 1 suite** (`qsyn batch suite`) once fault-free as a reference,
//! then once per seed with the fault plane armed (`--fault-seed N`) and
//! supervised retries enabled (`--fast` restricts the sweep to the
//! sub-second [`FAST_SET`] jobs for local iteration). Every seeded run
//! must
//!
//! * exit 0 — each injected OOM / deadline trip / cancellation / panic
//!   was recovered by the retry supervisor (quarantined managers are
//!   audited and never re-issued inside the scheduler; a violated
//!   invariant panics the run under `--features faults`), and
//! * journal **bit-identical results**: every job's depth, solution
//!   count, output permutation and circuit digest must equal the
//!   fault-free run's record — recovery may cost retries, never answers.
//!
//! The journal (not stdout) is compared so recovery annotations and
//! wall-clock noise don't enter the verdict.
//!
//! Every run (reference and seeded) also populates a per-run circuit
//! database via `--store`, which puts the `store.append` injection site
//! in the armed runs' line of fire. After each seeded run the store must
//! pass `qsyn store verify` (checksums + digest/spec agreement) and its
//! `qsyn store stats` records must match the fault-free reference's — a
//! faulted append may cost a retry, never a corrupt or divergent store.

use std::path::Path;
use std::process::{Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

/// The `--fast` subset: the Table 1 jobs that batch in under a second
/// each, for quick local sweeps. The default sweep covers the whole
/// suite — the permutation search prunes the `n!` probe space down to
/// conjugation classes with shared depth floors, which brought the 5-
/// and 6-line jobs from minutes-to-hours into CI range.
const FAST_SET: &[&str] = &[
    "3_17",
    "rd32-v0",
    "rd32-v1",
    "decod24-v0",
    "decod24-v1",
    "decod24-v2",
    "decod24-v3",
];

/// Sweep configuration (`--seeds`, `--timeout`, `--jobs`, `--fast`).
pub struct ChaosOptions {
    /// Fault seeds to sweep: `1..=seeds`.
    pub seeds: u64,
    /// Wall-clock limit per batch run; an overrun kills the child and
    /// fails the sweep (an injected fault must never hang recovery).
    pub timeout: Duration,
    /// `--jobs` forwarded to the batch scheduler.
    pub jobs: usize,
    /// Sweep only [`FAST_SET`] instead of the full Table 1 suite.
    pub fast: bool,
}

/// One journaled result, minus wall-clock time.
#[derive(Debug, PartialEq, Eq)]
struct ResultRecord {
    key: String,
    name: String,
    depth: u64,
    solutions: String,
    permutation: String,
    digest: String,
}

pub fn run(root: &Path, opts: &ChaosOptions) -> ExitCode {
    println!(
        "chaos: {} seeds over the {} Table 1 set, {}s per run, {} worker(s)",
        opts.seeds,
        if opts.fast { "fast" } else { "full" },
        opts.timeout.as_secs(),
        opts.jobs
    );
    println!("chaos: building release binary with --features faults");
    let built = Command::new("cargo")
        .current_dir(root)
        .args(["build", "--release", "-q", "--features", "faults"])
        .status();
    match built {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("chaos: build failed ({s})");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("chaos: cannot run cargo: {e}");
            return ExitCode::FAILURE;
        }
    }
    let qsyn = root.join("target/release/qsyn");
    let dir = std::env::temp_dir().join(format!("qsyn-chaos-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("chaos: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let target = if opts.fast {
        let job_list = dir.join("table1-fast.list");
        if let Err(e) = std::fs::write(&job_list, FAST_SET.join("\n")) {
            eprintln!("chaos: cannot write {}: {e}", job_list.display());
            return ExitCode::FAILURE;
        }
        println!(
            "chaos: --fast — sweeping only the {} sub-second Table 1 jobs",
            FAST_SET.len()
        );
        job_list.to_string_lossy().into_owned()
    } else {
        "suite".to_string()
    };

    let reference_journal = dir.join("reference.jsonl");
    let reference_store = dir.join("reference.store");
    let reference = match batch_run(
        &qsyn,
        &target,
        None,
        &reference_journal,
        &reference_store,
        opts,
    ) {
        Ok(run) => {
            println!(
                "chaos: reference run ok — {} jobs in {:.1?}",
                run.records.len(),
                run.elapsed
            );
            run.records
        }
        Err(e) => {
            eprintln!("chaos: fault-free reference run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if reference.is_empty() {
        eprintln!("chaos: reference journal is empty");
        return ExitCode::FAILURE;
    }
    let reference_db = match store_report(&qsyn, &reference_store) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("chaos: fault-free reference store failed verification: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failures = 0usize;
    for seed in 1..=opts.seeds {
        let journal = dir.join(format!("seed-{seed}.jsonl"));
        let store = dir.join(format!("seed-{seed}.store"));
        match batch_run(&qsyn, &target, Some(seed), &journal, &store, opts) {
            Ok(run) => {
                let verdict = compare(&reference, &run.records).and_then(|()| {
                    let db = store_report(&qsyn, &store)
                        .map_err(|e| format!("store failed verification: {e}"))?;
                    if db == reference_db {
                        Ok(())
                    } else {
                        Err(format!(
                            "store records diverged from reference:\n  reference: {reference_db:?}\n  seeded:    {db:?}"
                        ))
                    }
                });
                match verdict {
                    Ok(()) => println!(
                        "chaos: seed {seed} ok — {} in {:.1?} (faults recovered, results and store bit-identical)",
                        run.recovery, run.elapsed
                    ),
                    Err(diff) => {
                        eprintln!("chaos: seed {seed} DIVERGED: {diff}");
                        failures += 1;
                    }
                }
            }
            Err(e) => {
                eprintln!("chaos: seed {seed} FAILED: {e}");
                failures += 1;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    if failures == 0 {
        println!("chaos: all {} seeds recovered bit-identically", opts.seeds);
        ExitCode::SUCCESS
    } else {
        eprintln!("chaos: {failures}/{} seeds failed", opts.seeds);
        ExitCode::FAILURE
    }
}

/// Outcome of one `qsyn batch suite` child run.
struct BatchRun {
    records: Vec<ResultRecord>,
    /// The `N retries, M quarantined` tail of the session stats line.
    recovery: String,
    elapsed: Duration,
}

/// Runs one journaled batch (optionally fault-injected) under the
/// timeout, returning its parsed journal.
fn batch_run(
    qsyn: &Path,
    target: &str,
    seed: Option<u64>,
    journal: &Path,
    store: &Path,
    opts: &ChaosOptions,
) -> Result<BatchRun, String> {
    let _ = std::fs::remove_file(journal);
    let _ = std::fs::remove_file(store);
    let mut cmd = Command::new(qsyn);
    cmd.arg("batch")
        .arg(target)
        .arg("--journal")
        .arg(journal)
        .arg("--store")
        .arg(store)
        .args(["--jobs", &opts.jobs.to_string(), "--stats"]);
    if let Some(seed) = seed {
        // Escalation-only retries: an engine ladder would change which
        // engine answers (and so the enumerated solution set), breaking
        // the bit-identical invariant this sweep asserts.
        cmd.args(["--fault-seed", &seed.to_string(), "--retries", "4"]);
    }
    cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
    let started = Instant::now();
    let mut child = cmd.spawn().map_err(|e| format!("spawn: {e}"))?;
    let deadline = started + opts.timeout;
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {
                if Instant::now() > deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(format!(
                        "timed out after {}s (recovery must not hang)",
                        opts.timeout.as_secs()
                    ));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(format!("wait: {e}")),
        }
    };
    let elapsed = started.elapsed();
    let output = child
        .wait_with_output()
        .map_err(|e| format!("collect output: {e}"))?;
    let stdout = String::from_utf8_lossy(&output.stdout);
    if !status.success() {
        let stderr = String::from_utf8_lossy(&output.stderr);
        return Err(format!(
            "exit {status} — a job was not recovered\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}"
        ));
    }
    let recovery = stdout
        .lines()
        .find(|l| l.starts_with("sessions: "))
        .and_then(|l| {
            let tail: Vec<&str> = l.rsplitn(3, ", ").take(2).collect();
            (tail.len() == 2).then(|| format!("{}, {}", tail[1], tail[0]))
        })
        .unwrap_or_else(|| "no session stats".to_string());
    let records = parse_journal(journal)?;
    Ok(BatchRun {
        records,
        recovery,
        elapsed,
    })
}

/// Asserts the seeded run's journal matches the reference record-for-record.
fn compare(reference: &[ResultRecord], seeded: &[ResultRecord]) -> Result<(), String> {
    if reference.len() != seeded.len() {
        return Err(format!(
            "{} jobs journaled, reference has {}",
            seeded.len(),
            reference.len()
        ));
    }
    for r in reference {
        let Some(s) = seeded.iter().find(|s| s.key == r.key) else {
            return Err(format!("job {} ({}) missing from journal", r.key, r.name));
        };
        if s != r {
            return Err(format!(
                "job {} differs:\n  reference: {r:?}\n  seeded:    {s:?}",
                r.name
            ));
        }
    }
    Ok(())
}

/// Verifies a run's circuit database and returns its normalized record
/// listing: the `records:` header plus one line per record, sorted.
///
/// Two normalizations make the listing comparable across runs with a
/// parallel scheduler: record order is dropped (insertion order is
/// worker completion order) and the record *name* column is dropped (the
/// name is whichever job of an equivalence class completed first). All
/// remaining fields — digest, line count, depth, solution count, quantum
/// cost, output permutation — are deterministic, because the cache
/// always hands the engine the class's canonical representative.
fn store_report(qsyn: &Path, store: &Path) -> Result<Vec<String>, String> {
    let run = |action: &str| -> Result<std::process::Output, String> {
        Command::new(qsyn)
            .args(["store", action])
            .arg(store)
            .output()
            .map_err(|e| format!("qsyn store {action}: {e}"))
    };
    let verify = run("verify")?;
    if !verify.status.success() {
        return Err(format!(
            "qsyn store verify exited {}: {}{}",
            verify.status,
            String::from_utf8_lossy(&verify.stdout),
            String::from_utf8_lossy(&verify.stderr)
        ));
    }
    let stats = run("stats")?;
    if !stats.status.success() {
        return Err(format!("qsyn store stats exited {}", stats.status));
    }
    let stdout = String::from_utf8_lossy(&stats.stdout);
    let mut header = None;
    let mut records = Vec::new();
    for line in stdout.lines() {
        if line.starts_with("records:") {
            header = Some(line.to_string());
        } else if line.starts_with("bytes:")
            || line.starts_with("torn tail")
            || line.trim().is_empty()
        {
            // Byte totals vary with the stored names; torn tails are
            // covered by `verify` returning 0 truncated bytes on a
            // cleanly-closed file.
        } else {
            records.push(normalize_record_line(line));
        }
    }
    records.sort();
    let mut out = vec![header.ok_or("store stats printed no records header")?];
    out.append(&mut records);
    Ok(out)
}

/// Drops the name column (token 1) from a `store stats` record line.
fn normalize_record_line(line: &str) -> String {
    let mut tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() > 1 {
        tokens.remove(1);
    }
    tokens.join(" ")
}

/// Parses the result fields out of a batch journal. A tiny field-level
/// JSONL reader is duplicated here on purpose: xtask stays dependency-free
/// (it must build before — and lint — the workspace crates).
fn parse_journal(path: &Path) -> Result<Vec<ResultRecord>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut records = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let record = (|| {
            Some(ResultRecord {
                key: string_field(line, "key")?,
                name: string_field(line, "name")?,
                depth: number_field(line, "depth")?,
                solutions: string_field(line, "solutions")?,
                permutation: string_field(line, "permutation")?,
                digest: string_field(line, "digest")?,
            })
        })();
        match record {
            Some(r) => records.push(r),
            None => return Err(format!("malformed journal line: {line}")),
        }
    }
    Ok(records)
}

/// Extracts `"field":"…"` (the journal writes no escapes for these
/// fields: keys, counts and permutations are plain ASCII).
fn string_field(line: &str, field: &str) -> Option<String> {
    let marker = format!("\"{field}\":\"");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts `"field":123`.
fn number_field(line: &str, field: &str) -> Option<u64> {
    let marker = format!("\"{field}\":");
    let start = line.find(&marker)? + marker.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_line_fields_parse() {
        let line = r#"{"key":"0:a:00ff","name":"a","depth":5,"solutions":"24","permutation":"[0, 1]","elapsed_ns":12,"digest":"beef"}"#;
        assert_eq!(string_field(line, "name").as_deref(), Some("a"));
        assert_eq!(string_field(line, "permutation").as_deref(), Some("[0, 1]"));
        assert_eq!(number_field(line, "depth"), Some(5));
        assert_eq!(string_field(line, "missing"), None);
    }

    #[test]
    fn record_line_normalization_drops_the_name_column() {
        let a = "00c0ffee00c0ffee 3_17         3 lines, 5 gates, 3 solutions, quantum cost 13, permutation [0, 1, 2]";
        let b = "00c0ffee00c0ffee 3_17-twin    3 lines, 5 gates, 3 solutions, quantum cost 13, permutation [0, 1, 2]";
        assert_eq!(normalize_record_line(a), normalize_record_line(b));
        assert!(normalize_record_line(a).starts_with("00c0ffee00c0ffee 3 lines,"));
        assert!(normalize_record_line(a).ends_with("permutation [0, 1, 2]"));
    }

    #[test]
    fn compare_flags_divergence_and_missing_jobs() {
        let rec = |digest: &str| ResultRecord {
            key: "0:a:00".into(),
            name: "a".into(),
            depth: 3,
            solutions: "2".into(),
            permutation: "[0]".into(),
            digest: digest.into(),
        };
        assert!(compare(&[rec("x")], &[rec("x")]).is_ok());
        assert!(compare(&[rec("x")], &[rec("y")])
            .unwrap_err()
            .contains("differs"));
        assert!(compare(&[rec("x")], &[]).unwrap_err().contains("jobs"));
    }
}
