//! Workspace automation (`cargo xtask <task>`).
//!
//! The only task so far is `lint`: a dependency-free source scanner that
//! enforces repo-specific rules `clippy` has no lints for (see
//! `DESIGN.md` §8). Run as:
//!
//! ```text
//! cargo xtask lint                    # check
//! cargo xtask lint --update-baseline  # regenerate the expect baseline
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

mod lint;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let update = args.iter().any(|a| a == "--update-baseline");
            if let Some(bad) = args[1..].iter().find(|a| *a != "--update-baseline") {
                eprintln!("unknown lint option: {bad}");
                return ExitCode::from(2);
            }
            lint::run(&workspace_root(), update)
        }
        Some(other) => {
            eprintln!("unknown task: {other}\n\nusage: cargo xtask lint [--update-baseline]");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask lint [--update-baseline]");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: xtask lives directly under it.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .expect("xtask sits inside the workspace")
        .to_path_buf()
}
