//! Workspace automation (`cargo xtask <task>`).
//!
//! * `lint` — a dependency-free source scanner that enforces
//!   repo-specific rules `clippy` has no lints for (see `DESIGN.md` §9):
//!
//!   ```text
//!   cargo xtask lint                    # check
//!   cargo xtask lint --update-baseline  # regenerate the expect baseline
//!   ```
//!
//! * `concheck` — static concurrency analysis: lock-order cycles,
//!   blocking calls under a live guard, and naked condvar waits, from a
//!   token-level scan plus an approximate call graph (see `DESIGN.md`
//!   §13). `--self-test` runs it over an embedded corpus of seeded
//!   defects and fails unless all are flagged:
//!
//!   ```text
//!   cargo xtask concheck [--self-test]
//!   ```
//!
//! * `chaos` — the fault-injection sweep: builds with `--features
//!   faults`, runs the full Table 1 suite once fault-free and once per
//!   seed, and asserts every injected fault is recovered with
//!   bit-identical results (see `DESIGN.md` §10). `--fast` sweeps only
//!   the sub-second jobs for local iteration:
//!
//!   ```text
//!   cargo xtask chaos --seeds 2 --timeout 1200 [--jobs N] [--fast]
//!   ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

mod chaos;
mod concheck;
mod lexer;
mod lint;

const USAGE: &str = "usage: cargo xtask lint [--update-baseline]\n       cargo xtask concheck [--self-test]\n       cargo xtask chaos [--seeds N] [--timeout SECS] [--jobs N] [--fast]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let update = args.iter().any(|a| a == "--update-baseline");
            if let Some(bad) = args[1..].iter().find(|a| *a != "--update-baseline") {
                eprintln!("unknown lint option: {bad}");
                return ExitCode::from(2);
            }
            lint::run(&workspace_root(), update)
        }
        Some("concheck") => {
            let self_test = args.iter().any(|a| a == "--self-test");
            if let Some(bad) = args[1..].iter().find(|a| *a != "--self-test") {
                eprintln!("unknown concheck option: {bad}");
                return ExitCode::from(2);
            }
            concheck::run(&workspace_root(), self_test)
        }
        Some("chaos") => match parse_chaos(&args[1..]) {
            Ok(opts) => chaos::run(&workspace_root(), &opts),
            Err(e) => {
                eprintln!("{e}\n\n{USAGE}");
                ExitCode::from(2)
            }
        },
        Some(other) => {
            eprintln!("unknown task: {other}\n\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn parse_chaos(args: &[String]) -> Result<chaos::ChaosOptions, String> {
    let mut opts = chaos::ChaosOptions {
        seeds: 8,
        timeout: Duration::from_secs(1200),
        jobs: 2,
        fast: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--seeds" => {
                opts.seeds = value()?.parse().map_err(|_| "bad seed count".to_string())?;
            }
            "--timeout" => {
                let secs: u64 = value()?.parse().map_err(|_| "bad timeout".to_string())?;
                opts.timeout = Duration::from_secs(secs);
            }
            "--jobs" => {
                opts.jobs = value()?.parse().map_err(|_| "bad jobs".to_string())?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--fast" => opts.fast = true,
            other => return Err(format!("unknown chaos option: {other}")),
        }
    }
    if opts.seeds == 0 {
        return Err("--seeds must be at least 1".to_string());
    }
    Ok(opts)
}

/// The workspace root: xtask lives directly under it.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .expect("xtask sits inside the workspace")
        .to_path_buf()
}
