//! Shared token-level Rust scanning for the xtask analyzers.
//!
//! Both `cargo xtask lint` and `cargo xtask concheck` are dependency-free
//! source scanners: they must build (and pass judgement) before any
//! workspace crate compiles, so they cannot lean on `syn` or rustc
//! internals. This module is the one place that knows how to read Rust
//! source at that fidelity:
//!
//! * [`mask_comments_and_strings`] — blanks comments, string/char
//!   literals and raw strings (any `#` depth) while preserving byte
//!   length and line structure, so pattern matching never fires on prose;
//! * [`tokenize`] — splits masked source into word and punctuation
//!   tokens, each carrying its 1-based line, the substrate for the
//!   concheck guard-lifetime and call-graph extraction;
//! * [`cfg_test_lines`] — per-line flags for `#[cfg(test)]` items
//!   (attribute through matching closing brace);
//! * the shared scan-root walk ([`collect_rs_files`]) and the policy
//!   conventions ([`is_test_file`], [`is_bin_file`], [`load_allowlist`])
//!   so every analyzer exempts exactly the same code.
//!
//! The masking is a *scanner*, not a parser: it is total (any byte
//! sequence in, same-length masked text out) and errs toward leaving
//! bytes visible rather than hiding code. Its contract is pinned by the
//! property tests below — never panics, preserves line count, round-trips
//! byte length.

use std::path::{Path, PathBuf};

/// Directories scanned for library code, relative to the workspace root.
/// `xtask/src` is included so the analyzers are held to their own rules.
pub const SCAN_ROOTS: &[&str] = &["crates", "src", "xtask/src"];

/// Recursively collects `.rs` files under `dir` into `out`.
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Loads a one-entry-per-line allowlist (`#` comments and blanks
/// skipped). A missing file is an empty allowlist.
///
/// # Errors
///
/// The I/O error text for anything but a missing file.
pub fn load_allowlist(path: &Path) -> Result<Vec<String>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.to_string()),
    };
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect())
}

/// `true` for files that hold test code by repo convention: `tests.rs`,
/// `*_tests.rs` (included under `#[cfg(test)] mod`), and `tests/` trees.
pub fn is_test_file(rel: &str) -> bool {
    let name = rel.rsplit('/').next().unwrap_or(rel);
    name == "tests.rs" || name.ends_with("_tests.rs") || rel.contains("/tests/")
}

/// `true` for binary-target files (`src/bin/...`), where process exits and
/// terminal unwraps on startup errors are accepted.
pub fn is_bin_file(rel: &str) -> bool {
    rel.contains("/bin/")
}

/// Replaces the contents of comments, string literals and char literals
/// with spaces, preserving line structure so line numbers survive.
pub fn mask_comments_and_strings(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;

    // Emits `b` or a space for non-newline bytes inside masked regions.
    fn push_masked(out: &mut Vec<u8>, b: u8) {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    push_masked(&mut out, bytes[i]);
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        push_masked(&mut out, bytes[i]);
                        push_masked(&mut out, bytes[i + 1]);
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        push_masked(&mut out, bytes[i]);
                        push_masked(&mut out, bytes[i + 1]);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        push_masked(&mut out, bytes[i]);
                        i += 1;
                    }
                }
            }
            b'r' if matches!(bytes.get(i + 1), Some(b'"' | b'#')) => {
                // Raw string r"..." / r#"..."#.
                let mut j = i + 1;
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    out.push(b'r');
                    out.extend(std::iter::repeat_n(b'#', hashes));
                    out.push(b'"');
                    i = j + 1;
                    'raw: while i < bytes.len() {
                        if bytes[i] == b'"' {
                            let close = (1..=hashes).all(|k| bytes.get(i + k) == Some(&b'#'));
                            if close {
                                out.push(b'"');
                                out.extend(std::iter::repeat_n(b'#', hashes));
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        push_masked(&mut out, bytes[i]);
                        i += 1;
                    }
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            b'"' => {
                out.push(b'"');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' && i + 1 < bytes.len() {
                        push_masked(&mut out, bytes[i]);
                        push_masked(&mut out, bytes[i + 1]);
                        i += 2;
                    } else if bytes[i] == b'"' {
                        out.push(b'"');
                        i += 1;
                        break;
                    } else {
                        push_masked(&mut out, bytes[i]);
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal or lifetime. A char literal closes with a
                // quote one or two (escaped) positions later; a lifetime
                // has no closing quote.
                let close = if bytes.get(i + 1) == Some(&b'\\') {
                    // '\n', '\'', '\\', '\x7f', '\u{...}'
                    (i + 2..bytes.len().min(i + 12)).find(|&k| bytes[k] == b'\'')
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    Some(i + 2)
                } else {
                    None
                };
                if let Some(end) = close {
                    out.push(b'\'');
                    for &c in &bytes[i + 1..end] {
                        push_masked(&mut out, c);
                    }
                    out.push(b'\'');
                    i = end + 1;
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Per-line flags marking `#[cfg(test)]` items (attribute through matching
/// closing brace), computed on masked source.
pub fn cfg_test_lines(masked: &str) -> Vec<bool> {
    let lines: Vec<&str> = masked.lines().collect();
    let mut flags = vec![false; lines.len()];
    let bytes = masked.as_bytes();

    // Byte offset -> line index.
    let mut line_of = Vec::with_capacity(bytes.len() + 1);
    let mut ln = 0usize;
    for &b in bytes {
        line_of.push(ln);
        if b == b'\n' {
            ln += 1;
        }
    }
    line_of.push(ln);

    let needle = b"#[cfg(test)]";
    let mut i = 0;
    while i + needle.len() <= bytes.len() {
        if &bytes[i..i + needle.len()] != needle {
            i += 1;
            continue;
        }
        let start_line = line_of[i];
        // Find the item's opening brace, then its match. A `;` before any
        // `{` means the item is brace-less (e.g. `mod prop_tests;`): the
        // attribute applies to an out-of-line module whose *file* is
        // handled by `is_test_file`.
        let mut j = i + needle.len();
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        let end = match open {
            Some(open_at) => {
                let mut depth = 0usize;
                let mut k = open_at;
                loop {
                    if k >= bytes.len() {
                        break k;
                    }
                    match bytes[k] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break k;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            None => j,
        };
        let end_line = line_of[end.min(line_of.len() - 1)];
        for f in flags.iter_mut().take(end_line + 1).skip(start_line) {
            *f = true;
        }
        i = end + 1;
    }
    flags
}

/// One lexical token of masked source: a word (identifier, keyword or
/// number) or a single punctuation character, with its 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token text: a `[A-Za-z0-9_]+` word or one punctuation char.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
}

impl Token {
    /// `true` for word tokens starting with a letter or underscore
    /// (identifiers and keywords, not numeric literals).
    pub fn is_ident(&self) -> bool {
        self.text
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
    }
}

/// Tokenizes masked source into words and punctuation. Run it on the
/// output of [`mask_comments_and_strings`]: string bodies are already
/// spaces, so the only `"` tokens left are the masked literals' delimiters
/// and token text never spans a literal.
pub fn tokenize(masked: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut word_start: Option<(usize, usize)> = None; // (byte idx, line)
    let bytes = masked.as_bytes();
    let flush = |out: &mut Vec<Token>, start: Option<(usize, usize)>, end: usize, m: &str| {
        if let Some((s, l)) = start {
            out.push(Token {
                text: m[s..end].to_string(),
                line: l,
            });
        }
    };
    for (i, &b) in bytes.iter().enumerate() {
        let is_word = b.is_ascii_alphanumeric() || b == b'_';
        if is_word {
            if word_start.is_none() {
                word_start = Some((i, line));
            }
        } else {
            flush(&mut out, word_start.take(), i, masked);
            if b == b'\n' {
                line += 1;
            } else if !b.is_ascii_whitespace() && b.is_ascii() {
                out.push(Token {
                    text: (b as char).to_string(),
                    line,
                });
            }
            // Non-ASCII bytes (masked literals leave none; stray unicode
            // in code is illegal Rust anyway) are skipped.
        }
    }
    flush(&mut out, word_start.take(), bytes.len(), masked);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn masking_blanks_comments_and_strings() {
        let src = "let a = \"x.unwrap()\"; // call .unwrap() here\nlet b = 1;\n";
        let masked = mask_comments_and_strings(src);
        assert!(!masked.contains(".unwrap()"));
        assert!(masked.contains("let a = \""));
        assert!(masked.contains("let b = 1;"));
        assert_eq!(masked.lines().count(), src.lines().count());
    }

    #[test]
    fn masking_handles_raw_strings_and_chars() {
        let src = "let s = r#\"a \" .unwrap() \"#; let c = '\\''; let l: &'static str = \"\";";
        let masked = mask_comments_and_strings(src);
        assert!(!masked.contains(".unwrap()"));
        assert!(masked.contains("let l: &'static str"));
    }

    #[test]
    fn masking_handles_raw_strings_with_many_hashes() {
        let src = "let s = r##\"inner \"# quote .lock() \"##; let live = x.lock();";
        let masked = mask_comments_and_strings(src);
        assert_eq!(masked.len(), src.len());
        assert_eq!(
            masked.matches(".lock()").count(),
            1,
            "only the code mention survives: {masked}"
        );
        assert!(masked.ends_with("let live = x.lock();"));
    }

    #[test]
    fn masking_handles_nested_block_comments() {
        let src = "/* outer /* inner .unwrap() */ still comment */ let x = 1;";
        let masked = mask_comments_and_strings(src);
        assert!(!masked.contains(".unwrap()"));
        assert!(masked.contains("let x = 1;"));
    }

    #[test]
    fn masking_distinguishes_lifetimes_from_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = 'x'; let e = '\\n'; c }";
        let masked = mask_comments_and_strings(src);
        assert!(masked.contains("fn f<'a>(x: &'a str)"), "got {masked}");
        assert!(!masked.contains("'x'"), "char body masked: {masked}");
        assert_eq!(masked.len(), src.len());
    }

    #[test]
    fn masking_survives_unterminated_constructs() {
        for src in [
            "let s = \"never closed...",
            "/* never closed",
            "let r = r#\"never closed",
            "let q = '",
        ] {
            let masked = mask_comments_and_strings(src);
            assert_eq!(masked.len(), src.len(), "length for {src:?}");
        }
    }

    #[test]
    fn tokenizer_yields_words_and_punct_with_lines() {
        let toks = tokenize("let g = m.lock();\n  drop(g);");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["let", "g", "=", "m", ".", "lock", "(", ")", ";", "drop", "(", "g", ")", ";"]
        );
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[9].line, 2, "drop is on line 2");
        assert!(toks[1].is_ident());
        assert!(!toks[2].is_ident());
    }

    #[test]
    fn cfg_test_region_is_tracked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let masked = mask_comments_and_strings(src);
        let flags = cfg_test_lines(&masked);
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn allowlist_parses_and_tolerates_absence() {
        let dir = std::env::temp_dir().join("qsyn-lexer-allowlist-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("allow.txt");
        std::fs::write(&path, "# supervisors\ncrates/a/src/lib.rs\n\nsrc/cli.rs\n")
            .expect("write allowlist");
        let list = load_allowlist(&path).expect("parse");
        assert_eq!(list, vec!["crates/a/src/lib.rs", "src/cli.rs"]);
        let missing = dir.join("definitely-missing.txt");
        assert_eq!(
            load_allowlist(&missing).expect("missing ok"),
            Vec::<String>::new()
        );
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Adversarial near-Rust text: random joins of the fragments the
    /// masking state machine branches on (quotes, escapes, raw-string
    /// openers/closers, comment delimiters, lifetimes, multibyte chars).
    fn arbitrary_source(seed: u64, fragments: usize) -> String {
        const FRAGMENTS: &[&str] = &[
            "\"",
            "\\",
            "\\\"",
            "r\"",
            "r#\"",
            "r##\"",
            "\"#",
            "\"##",
            "'",
            "'a",
            "'x'",
            "'\\''",
            "/*",
            "*/",
            "//",
            "\n",
            "{",
            "}",
            "(",
            ")",
            ";",
            "=",
            ".lock()",
            ".unwrap()",
            "ident",
            "let x",
            "λμ",
            "#",
            "r",
            "b",
            " ",
        ];
        let mut s = seed;
        (0..fragments)
            .map(|_| FRAGMENTS[(splitmix(&mut s) % FRAGMENTS.len() as u64) as usize])
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Masking is total and structure-preserving on arbitrary input:
        /// it never panics, round-trips the byte length exactly, and
        /// keeps every newline (so findings keep their line numbers).
        fn masking_is_total_and_structure_preserving(
            seed in any::<u64>(),
            fragments in 0usize..200,
        ) {
            let src = arbitrary_source(seed, fragments);
            let masked = mask_comments_and_strings(&src);
            prop_assert_eq!(masked.len(), src.len(), "byte length for {:?}", src);
            prop_assert_eq!(
                masked.matches('\n').count(),
                src.matches('\n').count(),
                "line count for {:?}",
                src
            );
        }

        /// The downstream passes accept anything the masker emits.
        fn tokenize_and_cfg_test_accept_masked_output(
            seed in any::<u64>(),
            fragments in 0usize..120,
        ) {
            let src = arbitrary_source(seed, fragments);
            let masked = mask_comments_and_strings(&src);
            let toks = tokenize(&masked);
            let max_line = 1 + masked.matches('\n').count();
            prop_assert!(toks.iter().all(|t| t.line >= 1 && t.line <= max_line));
            prop_assert_eq!(cfg_test_lines(&masked).len(), masked.lines().count());
        }
    }
}
