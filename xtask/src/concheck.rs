//! Static concurrency analysis (`cargo xtask concheck`).
//!
//! A tier deeper than the line-oriented policy lint: this pass tokenizes
//! every library source file (shared `lexer` module), extracts per-function
//! lock-guard lifetimes and an approximate intra-workspace call graph, and
//! runs three analyses:
//!
//! * **lock-order** — builds the acquired-while-holding graph (including
//!   edges induced through calls: holding `A` while calling a function
//!   that transitively acquires `B` adds `A → B`) and reports every cycle
//!   as a potential deadlock. Self-loops count: `std::sync::Mutex` is not
//!   reentrant.
//! * **blocking-under-lock** — flags blocking operations (`sync_all`,
//!   `write_all`, `connect`, `accept`, `read_line`, `sleep`,
//!   `Condvar::wait*`, the engine's `synthesize*` entry points, and
//!   blocking queue `push`/`pop`) performed while a guard is live,
//!   directly or through a transitively-blocking callee.
//! * **condvar-wait-loop** — a `.wait(guard)` / `.wait_timeout(guard, …)`
//!   whose first argument is a live guard must sit inside a `loop`/
//!   `while`/`for` so the predicate is rechecked after spurious wakeups.
//!
//! Everything is approximate by design (see DESIGN.md §13 for the
//! catalogued false-positive modes): locks are identified by their
//! *textual access path* (`self.shared.index`), calls are resolved by bare
//! name with a skip list for ubiquitous method names, and guard lifetimes
//! are tracked by brace depth, not the borrow checker. Findings are
//! waived inline with `// lint: allow(<rule>)` on the witness line, or in
//! `xtask/concheck-allowlist.txt` (`<rule> <file>` or
//! `<rule> <file>:<function>`), each entry carrying a justification.
//!
//! `--self-test` runs the pipeline over an embedded corpus with seeded
//! defects (a direct lock inversion, an interprocedural inversion, two
//! blocking-under-lock sites, a naked condvar wait) and fails unless every
//! seeded defect is flagged and nothing else is.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::Path;
use std::process::ExitCode;

use crate::lexer::{
    cfg_test_lines, collect_rs_files, is_bin_file, is_test_file, load_allowlist,
    mask_comments_and_strings, tokenize, Token, SCAN_ROOTS,
};

const ALLOWLIST_FILE: &str = "xtask/concheck-allowlist.txt";

/// Method names never resolved through the call graph: they are defined on
/// dozens of std and workspace types, so resolving `x.get()` to *every*
/// `fn get` would drown the analysis in false edges. Blocking behaviour of
/// names on this list is still caught by the *direct* blocking list below.
const COMMON_METHODS: &[&str] = &[
    "new",
    "clone",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "get",
    "get_mut",
    "remove",
    "contains",
    "contains_key",
    "iter",
    "into_iter",
    "next",
    "lock",
    "try_lock",
    "unwrap",
    "expect",
    "map",
    "map_err",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "to_string",
    "to_owned",
    "into",
    "from",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "fmt",
    "write",
    "flush",
    "read",
    "send",
    "recv",
    "try_recv",
    "drop",
    "default",
    "eq",
    "ne",
    "hash",
    "cmp",
    "partial_cmp",
    "clear",
    "extend",
    "retain",
    "take",
    "replace",
    "join",
    "spawn",
    "sleep",
    "wait",
    "wait_timeout",
    "wait_while",
    "notify_one",
    "notify_all",
    "min",
    "max",
    "abs",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "split",
    "trim",
    "parse",
    "collect",
    "filter",
    "any",
    "all",
    "find",
    "position",
    "count",
    "sum",
    "rev",
    "chain",
    "zip",
    "enumerate",
    "last",
    "first",
    "starts_with",
    "ends_with",
    "push_str",
    "entry",
    "or_insert",
    "or_insert_with",
    "keys",
    "values",
    "sort",
    "sort_by",
    "sort_by_key",
    "dedup",
    "truncate",
    "drain",
    "append",
    "with_capacity",
    "to_vec",
    "copied",
    "cloned",
    "flatten",
    "flat_map",
    "fold",
    "contains_bit",
    "swap",
];

/// Operations treated as blocking wherever they appear (matched on the
/// bare call name). `join` is deliberately absent — `Vec::join`/`str::join`
/// would swamp the signal; thread joins under a lock surface through the
/// functions they call instead.
const BLOCKING_DIRECT: &[&str] = &[
    "sync_all",
    "sync_data",
    "write_all",
    "connect",
    "accept",
    "read_line",
    "read_to_string",
    "read_exact",
    "sleep",
    "wait",
    "wait_timeout",
    "wait_while",
    "wait_timeout_while",
];

/// Receiver-qualified blocking calls: `queue.push` / `queue.pop` are the
/// *blocking* `WorkQueue` entry points (`try_push` is the non-blocking
/// admission-control path and is not listed).
const BLOCKING_QUALIFIED: &[(&str, &str)] = &[("queue", "push"), ("queue", "pop")];

/// Condvar-style wait names for the wait-loop rule.
const WAIT_NAMES: &[&str] = &["wait", "wait_timeout", "wait_while", "wait_timeout_while"];

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "mut",
    "ref", "move", "as", "in", "pub", "use", "mod", "struct", "enum", "impl", "trait", "where",
    "unsafe", "crate", "super", "self", "Self", "fn", "static", "const", "type", "dyn", "box",
];

/// One analysis finding, formatted `concheck[rule]: file:line: message`.
#[derive(Clone, Debug)]
pub struct ConFinding {
    pub rule: &'static str,
    pub file: String,
    pub function: String,
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ConFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "concheck[{}]: {}:{}: (in fn {}) {}",
            self.rule, self.file, self.line, self.function, self.message
        )
    }
}

/// A live lock guard during the per-function walk.
#[derive(Clone, Debug)]
struct Guard {
    /// Binding name for `let g = x.lock()…;` guards; `None` for
    /// temporaries (`match x.lock() { … }`, `x.lock().f()`).
    var: Option<String>,
    /// Textual lock path, e.g. `self.shared.index`.
    lock: String,
    /// Brace depth at acquisition; the guard dies when depth drops below
    /// this (both kinds) or at a `;` back at this depth (temporaries).
    depth: usize,
    bound: bool,
}

/// A call made inside a function body.
#[derive(Clone, Debug)]
struct CallSite {
    callee: String,
    receiver: Option<String>,
    /// Lock paths held at the call, minus the guard consumed as a
    /// `wait(guard)` argument.
    held: Vec<String>,
    /// For `wait*` calls: whether the first argument names a live guard
    /// (distinguishes `Condvar::wait(g)` from `Child::wait()`).
    first_arg_is_guard: bool,
    line: usize,
    in_loop: bool,
    dotted: bool,
}

/// Everything extracted from one function body.
#[derive(Clone, Debug, Default)]
struct FnRec {
    file: String,
    name: String,
    /// Lock paths acquired directly anywhere in the body.
    acquires: BTreeSet<String>,
    /// Same-function acquired-while-holding edges: (held, acquired, line).
    edges: Vec<(String, String, usize)>,
    calls: Vec<CallSite>,
}

/// Extracts all functions (including nested ones) from one file's tokens.
fn extract_functions(file: &str, tokens: &[Token]) -> Vec<FnRec> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].text == "fn" && tokens[i + 1].is_ident() {
            let name = tokens[i + 1].text.clone();
            // Find the body's opening brace (or `;` for a bodyless
            // trait-method signature).
            let mut j = i + 2;
            let mut open = None;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "{" => {
                        open = Some(j);
                        break;
                    }
                    ";" => break,
                    _ => j += 1,
                }
            }
            if let Some(open) = open {
                let close = matching_brace(tokens, open);
                out.push(walk_function(file, &name, tokens, open, close));
            }
            // Do not skip the body: nested `fn`s are discovered by this
            // same scan (walk_function itself skips nested bodies).
        }
        i += 1;
    }
    out
}

/// Index of the `)` matching the `(` at `open` (or the last token).
fn matching_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while k < tokens.len() {
        match tokens[k].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    tokens.len() - 1
}

/// `true` when the method chain continuing after index `k` (the token
/// right after `.lock()`'s closing paren) consists only of
/// `.expect(…)`/`.unwrap()`/`?` and then ends the statement — i.e. a
/// `let` on this statement binds the *guard*. Any other continuation
/// (`.get(…)`, `.clone()`, …) means the guard is a temporary and the
/// `let` binds a value extracted under it.
fn chain_yields_guard(tokens: &[Token], mut k: usize, close: usize) -> bool {
    loop {
        match tokens.get(k).map(|t| t.text.as_str()) {
            Some("?") => k += 1,
            Some(".") => match tokens.get(k + 1).map(|t| t.text.as_str()) {
                Some("expect" | "unwrap")
                    if tokens.get(k + 2).map(|t| t.text.as_str()) == Some("(") =>
                {
                    k = matching_paren(tokens, k + 2) + 1;
                }
                _ => return false,
            },
            Some(";") | None => return true,
            _ => return false,
        }
        if k > close {
            return false;
        }
    }
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while k < tokens.len() {
        match tokens[k].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    tokens.len() - 1
}

/// Builds the dotted access path ending at the ident just before the `.`
/// at `dot_idx` (e.g. `self.shared.index` for `self.shared.index.lock()`).
fn lock_path(tokens: &[Token], dot_idx: usize) -> String {
    let mut parts = Vec::new();
    let mut k = dot_idx; // points at the `.` before `lock`
    while k >= 1 && tokens[k].text == "." && tokens[k - 1].is_ident() {
        parts.push(tokens[k - 1].text.clone());
        if k >= 2 {
            k -= 2;
        } else {
            break;
        }
    }
    parts.reverse();
    parts.join(".")
}

/// Walks one function body, tracking guard lifetimes by brace depth.
fn walk_function(file: &str, name: &str, tokens: &[Token], open: usize, close: usize) -> FnRec {
    let mut rec = FnRec {
        file: file.to_string(),
        name: name.to_string(),
        ..FnRec::default()
    };
    let mut depth = 1usize; // inside the body brace
    let mut loop_scopes = vec![false];
    let mut pending_loop = false;
    let mut guards: Vec<Guard> = Vec::new();
    let mut stmt_let: Option<String> = None;
    let mut at_stmt_start = true;

    let mut k = open + 1;
    while k < close {
        let t = &tokens[k];
        match t.text.as_str() {
            "{" => {
                loop_scopes.push(pending_loop);
                pending_loop = false;
                depth += 1;
                at_stmt_start = true;
                stmt_let = None;
            }
            "}" => {
                depth -= 1;
                loop_scopes.pop();
                guards.retain(|g| g.depth <= depth);
                at_stmt_start = true;
                stmt_let = None;
            }
            ";" => {
                guards.retain(|g| g.bound || g.depth < depth);
                at_stmt_start = true;
                stmt_let = None;
            }
            "let" if at_stmt_start => {
                // Binder = first ident after `let`, skipping `mut` and
                // pattern punctuation. `if let`/`while let` never reach
                // here (the `if`/`while` cleared `at_stmt_start`).
                let mut j = k + 1;
                while j < close {
                    let tj = &tokens[j].text;
                    if tj == "mut" || tj == "(" || tj == "&" {
                        j += 1;
                    } else {
                        break;
                    }
                }
                if j < close && tokens[j].is_ident() {
                    stmt_let = Some(tokens[j].text.clone());
                }
                at_stmt_start = false;
            }
            "loop" | "while" | "for" => {
                pending_loop = true;
                at_stmt_start = false;
            }
            "fn" if k + 1 < close && tokens[k + 1].is_ident() => {
                // Nested fn: skip its body — it is analyzed as its own
                // function by the outer scan.
                let mut j = k + 2;
                while j < close && tokens[j].text != "{" && tokens[j].text != ";" {
                    j += 1;
                }
                if j < close && tokens[j].text == "{" {
                    k = matching_brace(tokens, j);
                }
                at_stmt_start = true;
            }
            "drop" if k + 2 < close && tokens[k + 1].text == "(" && tokens[k + 2].is_ident() => {
                let victim = &tokens[k + 2].text;
                guards.retain(|g| g.var.as_deref() != Some(victim));
                at_stmt_start = false;
            }
            "lock" if k >= 1 && tokens[k - 1].text == "." => {
                if k + 1 < close && tokens[k + 1].text == "(" {
                    let path = lock_path(tokens, k - 1);
                    for h in &guards {
                        rec.edges.push((h.lock.clone(), path.clone(), t.line));
                    }
                    rec.acquires.insert(path.clone());
                    let after = matching_paren(tokens, k + 1) + 1;
                    let bound = stmt_let.is_some() && chain_yields_guard(tokens, after, close);
                    guards.push(Guard {
                        var: if bound { stmt_let.clone() } else { None },
                        lock: path,
                        depth,
                        bound,
                    });
                }
                at_stmt_start = false;
            }
            word if tokens.get(k + 1).map(|n| n.text.as_str()) == Some("(")
                && t.is_ident()
                && !KEYWORDS.contains(&word)
                && !word.starts_with(char::is_uppercase) =>
            {
                let dotted = k >= 1 && tokens[k - 1].text == ".";
                let receiver = if dotted && k >= 2 && tokens[k - 2].is_ident() {
                    Some(tokens[k - 2].text.clone())
                } else {
                    None
                };
                // First-argument guard: `cv.wait(g)` consumes g, so g does
                // not count as "held across" the wait — but any *other*
                // live guard does.
                let mut first_arg_is_guard = false;
                let mut held: Vec<String> = Vec::new();
                let mut arg = k + 2;
                while arg < close && matches!(tokens[arg].text.as_str(), "&" | "mut") {
                    arg += 1;
                }
                let first_arg = tokens
                    .get(arg)
                    .filter(|a| a.is_ident())
                    .map(|a| a.text.clone());
                for g in &guards {
                    let consumed =
                        WAIT_NAMES.contains(&word) && g.var.is_some() && g.var == first_arg;
                    if consumed {
                        first_arg_is_guard = true;
                    } else {
                        held.push(g.lock.clone());
                    }
                }
                held.sort();
                held.dedup();
                rec.calls.push(CallSite {
                    callee: word.to_string(),
                    receiver,
                    held,
                    first_arg_is_guard,
                    line: t.line,
                    in_loop: loop_scopes.iter().any(|&l| l),
                    dotted,
                });
                at_stmt_start = false;
            }
            _ => {
                at_stmt_start = false;
            }
        }
        k += 1;
    }
    rec
}

/// `true` when the call-graph should try to resolve `callee` by name.
fn resolvable(callee: &str) -> bool {
    !COMMON_METHODS.contains(&callee) && !callee.starts_with(char::is_uppercase)
}

/// `true` when a call site is a blocking operation by itself (before
/// call-graph propagation).
fn is_direct_blocking(cs: &CallSite) -> bool {
    BLOCKING_DIRECT.contains(&cs.callee.as_str())
        || cs.callee.starts_with("synthesize")
        || BLOCKING_QUALIFIED
            .iter()
            .any(|(r, c)| cs.receiver.as_deref() == Some(*r) && cs.callee == *c)
}

/// The full interprocedural analysis over pre-extracted functions.
/// `sources` maps file → raw source (for inline-waiver lookup).
fn analyze(fns: &[FnRec], sources: &BTreeMap<String, Vec<String>>) -> Vec<ConFinding> {
    let mut name_map: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, f) in fns.iter().enumerate() {
        name_map.entry(&f.name).or_default().push(i);
    }
    let resolve = |callee: &str| -> &[usize] {
        if resolvable(callee) {
            name_map.get(callee).map(Vec::as_slice).unwrap_or(&[])
        } else {
            &[]
        }
    };

    // locks_star: all lock paths a function may acquire, transitively.
    let mut locks_star: Vec<BTreeSet<String>> = fns.iter().map(|f| f.acquires.clone()).collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            let mut add = BTreeSet::new();
            for cs in &fns[i].calls {
                for &d in resolve(&cs.callee) {
                    for l in &locks_star[d] {
                        if !locks_star[i].contains(l) {
                            add.insert(l.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                locks_star[i].extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // blocking_star: reason chain ("put → write_all") per function, if any
    // path through it reaches a direct blocking op.
    let mut blocking_star: Vec<Option<String>> = fns
        .iter()
        .map(|f| {
            f.calls
                .iter()
                .find(|cs| is_direct_blocking(cs))
                .map(|cs| cs.callee.clone())
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            if blocking_star[i].is_some() {
                continue;
            }
            let hit = fns[i].calls.iter().find_map(|cs| {
                resolve(&cs.callee).iter().find_map(|&d| {
                    blocking_star[d]
                        .as_ref()
                        .map(|r| format!("{} → {}", cs.callee, r))
                })
            });
            if hit.is_some() {
                blocking_star[i] = hit;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let waived = |file: &str, line: usize, rule: &str| -> bool {
        sources
            .get(file)
            .and_then(|lines| lines.get(line.saturating_sub(1)))
            .is_some_and(|l| l.contains(&format!("lint: allow({rule})")))
    };

    let mut findings = Vec::new();

    // --- lock-order: gather edges (same-function + call-induced), drop
    // waived ones, then report cycles.
    struct LEdge {
        from: String,
        to: String,
        file: String,
        function: String,
        line: usize,
        via: Option<String>,
    }
    let mut ledges: Vec<LEdge> = Vec::new();
    for f in fns {
        for (from, to, line) in &f.edges {
            ledges.push(LEdge {
                from: from.clone(),
                to: to.clone(),
                file: f.file.clone(),
                function: f.name.clone(),
                line: *line,
                via: None,
            });
        }
        for cs in &f.calls {
            if cs.held.is_empty() {
                continue;
            }
            let mut acquired: BTreeSet<&String> = BTreeSet::new();
            for &d in resolve(&cs.callee) {
                acquired.extend(locks_star[d].iter());
            }
            for to in acquired {
                for from in &cs.held {
                    ledges.push(LEdge {
                        from: from.clone(),
                        to: to.clone(),
                        file: f.file.clone(),
                        function: f.name.clone(),
                        line: cs.line,
                        via: Some(cs.callee.clone()),
                    });
                }
            }
        }
    }
    ledges.retain(|e| !waived(&e.file, e.line, "lock-order"));

    // Tarjan-free SCC via Kosaraju on the small lock graph.
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for e in &ledges {
        nodes.insert(&e.from);
        nodes.insert(&e.to);
    }
    let idx: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let n = nodes.len();
    let mut fwd = vec![Vec::new(); n];
    let mut rev = vec![Vec::new(); n];
    for e in &ledges {
        let (a, b) = (idx[e.from.as_str()], idx[e.to.as_str()]);
        fwd[a].push(b);
        rev[b].push(a);
    }
    let mut order = Vec::new();
    let mut seen = vec![false; n];
    for s in 0..n {
        if seen[s] {
            continue;
        }
        // Iterative post-order DFS.
        let mut stack = vec![(s, 0usize)];
        seen[s] = true;
        while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
            if *ei < fwd[v].len() {
                let w = fwd[v][*ei];
                *ei += 1;
                if !seen[w] {
                    seen[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut ncomp = 0;
    for &s in order.iter().rev() {
        if comp[s] != usize::MAX {
            continue;
        }
        let mut stack = vec![s];
        comp[s] = ncomp;
        while let Some(v) = stack.pop() {
            for &w in &rev[v] {
                if comp[w] == usize::MAX {
                    comp[w] = ncomp;
                    stack.push(w);
                }
            }
        }
        ncomp += 1;
    }
    let node_list: Vec<&str> = nodes.iter().copied().collect();
    for c in 0..ncomp {
        let members: Vec<&str> = node_list
            .iter()
            .enumerate()
            .filter(|(i, _)| comp[*i] == c)
            .map(|(_, &s)| s)
            .collect();
        let internal: Vec<&LEdge> = ledges
            .iter()
            .filter(|e| {
                comp[idx[e.from.as_str()]] == c
                    && comp[idx[e.to.as_str()]] == c
                    && (members.len() > 1 || e.from == e.to)
            })
            .collect();
        let cyclic = members.len() > 1 || internal.iter().any(|e| e.from == e.to);
        if !cyclic || internal.is_empty() {
            continue;
        }
        let witness = &internal[0];
        let mut msg = format!(
            "potential deadlock: lock-order cycle among {{{}}};",
            members.join(", ")
        );
        for e in &internal {
            let via = e
                .via
                .as_ref()
                .map(|v| format!(" via {v}()"))
                .unwrap_or_default();
            msg.push_str(&format!(
                " [{} -> {} at {}:{} in fn {}{}]",
                e.from, e.to, e.file, e.line, e.function, via
            ));
        }
        findings.push(ConFinding {
            rule: "lock-order",
            file: witness.file.clone(),
            function: witness.function.clone(),
            line: witness.line,
            message: msg,
        });
    }

    // --- blocking-under-lock ---
    for f in fns {
        for cs in &f.calls {
            if cs.held.is_empty() {
                continue;
            }
            let reason = if is_direct_blocking(cs) {
                Some(cs.callee.clone())
            } else {
                resolve(&cs.callee).iter().find_map(|&d| {
                    blocking_star[d]
                        .as_ref()
                        .map(|r| format!("{} → {}", cs.callee, r))
                })
            };
            let Some(reason) = reason else { continue };
            if waived(&f.file, cs.line, "blocking-under-lock") {
                continue;
            }
            findings.push(ConFinding {
                rule: "blocking-under-lock",
                file: f.file.clone(),
                function: f.name.clone(),
                line: cs.line,
                message: format!(
                    "blocking call `{}` while holding {{{}}} — move the I/O outside the \
                     critical section or waive with a justification",
                    reason,
                    cs.held.join(", ")
                ),
            });
        }
    }

    // --- condvar-wait-loop ---
    for f in fns {
        for cs in &f.calls {
            if cs.dotted
                && WAIT_NAMES.contains(&cs.callee.as_str())
                && cs.first_arg_is_guard
                && !cs.in_loop
                && !waived(&f.file, cs.line, "condvar-wait-loop")
            {
                findings.push(ConFinding {
                    rule: "condvar-wait-loop",
                    file: f.file.clone(),
                    function: f.name.clone(),
                    line: cs.line,
                    message: format!(
                        "`.{}(guard)` outside a loop — spurious wakeups require a \
                         while-style predicate recheck",
                        cs.callee
                    ),
                });
            }
        }
    }

    findings.sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
    findings
}

/// Runs the whole pipeline over in-memory `(rel_path, source)` files.
fn analyze_sources(files: &[(String, String)]) -> Vec<ConFinding> {
    let mut fns = Vec::new();
    let mut sources: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (rel, source) in files {
        if is_test_file(rel) || is_bin_file(rel) {
            continue;
        }
        let masked = mask_comments_and_strings(source);
        let test_lines = cfg_test_lines(&masked);
        // Blank out test regions before tokenizing so `#[cfg(test)]` code
        // contributes neither functions nor call edges.
        let lib_only: String = masked
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if test_lines.get(i).copied().unwrap_or(false) {
                    String::new() + "\n"
                } else {
                    String::from(l) + "\n"
                }
            })
            .collect();
        let tokens = tokenize(&lib_only);
        fns.extend(extract_functions(rel, &tokens));
        sources.insert(rel.clone(), source.lines().map(str::to_string).collect());
    }
    analyze(&fns, &sources)
}

/// Applies `xtask/concheck-allowlist.txt` entries (`<rule> <file>` or
/// `<rule> <file>:<function>`); returns surviving findings plus any unused
/// entries (reported as warnings, not failures).
fn apply_allowlist(findings: Vec<ConFinding>, allow: &[String]) -> (Vec<ConFinding>, Vec<String>) {
    let mut used = vec![false; allow.len()];
    let surviving: Vec<ConFinding> = findings
        .into_iter()
        .filter(|f| {
            let mut hit = false;
            for (i, entry) in allow.iter().enumerate() {
                let Some((rule, target)) = entry.split_once(' ') else {
                    continue;
                };
                if rule != f.rule {
                    continue;
                }
                let matches = if let Some((file, func)) = target.split_once(':') {
                    file == f.file && func == f.function
                } else {
                    target == f.file
                };
                if matches {
                    used[i] = true;
                    hit = true;
                }
            }
            !hit
        })
        .collect();
    let unused = allow
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    (surviving, unused)
}

/// Entry point for `cargo xtask concheck [--self-test]`.
pub fn run(root: &Path, self_test: bool) -> ExitCode {
    if self_test {
        return run_self_test();
    }

    let allow = match load_allowlist(&root.join(ALLOWLIST_FILE)) {
        Ok(list) => list,
        Err(e) => {
            eprintln!("concheck: cannot read {ALLOWLIST_FILE}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut paths = Vec::new();
    for scan in SCAN_ROOTS {
        collect_rs_files(&root.join(scan), &mut paths);
    }
    paths.sort();
    let mut files = Vec::new();
    for path in &paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        match std::fs::read_to_string(path) {
            Ok(s) => files.push((rel, s)),
            Err(e) => {
                eprintln!("concheck: cannot read {rel}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let findings = analyze_sources(&files);
    let (surviving, unused) = apply_allowlist(findings, &allow);
    for entry in &unused {
        println!("concheck: allowlist entry unused (consider removing): {entry}");
    }
    if surviving.is_empty() {
        println!(
            "concheck: {} files clean ({} allowlist entries)",
            files.len(),
            allow.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &surviving {
            eprintln!("{f}");
        }
        eprintln!(
            "concheck: {} finding(s) — fix, waive inline with `// lint: allow(<rule>)`, \
             or add a justified entry to {ALLOWLIST_FILE}",
            surviving.len()
        );
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// Self-test corpus: seeded defects the analyzer must flag.
// ---------------------------------------------------------------------------

/// Direct lock inversion inside one file: `forward` takes alpha then beta,
/// `backward` takes beta then alpha.
const CORPUS_INVERSION: &str = r#"
impl Pair {
    fn forward(&self) {
        let a = self.alpha.lock().expect("alpha");
        let b = self.beta.lock().expect("beta");
        drop(b);
        drop(a);
    }
    fn backward(&self) {
        let b = self.beta.lock().expect("beta");
        let a = self.alpha.lock().expect("alpha");
        drop(a);
        drop(b);
    }
}
"#;

/// Interprocedural inversion: `outer` holds gamma and calls `helper_d`,
/// which takes delta; `reversed` takes delta then gamma directly.
const CORPUS_INTERPROC: &str = r#"
impl Web {
    fn outer(&self) {
        let g = self.gamma.lock().expect("gamma");
        self.helper_d();
        drop(g);
    }
    fn helper_d(&self) {
        let d = self.delta.lock().expect("delta");
        drop(d);
    }
    fn reversed(&self) {
        let d = self.delta.lock().expect("delta");
        let g = self.gamma.lock().expect("gamma");
        drop(g);
        drop(d);
    }
}
"#;

/// Blocking under a lock: an fsync and a synthesis call inside critical
/// sections.
const CORPUS_BLOCKING: &str = r#"
impl Persister {
    fn persist(&self) {
        let g = self.state.lock().expect("state");
        self.file.sync_all().expect("fsync");
        drop(g);
    }
    fn solve_under_lock(&self, spec: &Spec) -> Circuit {
        let g = self.state.lock().expect("state");
        let c = synthesize_exact(spec);
        drop(g);
        c
    }
}
"#;

/// A naked condvar wait (no recheck loop) next to a correct one.
const CORPUS_NAKED_WAIT: &str = r#"
impl Slot {
    fn wait_once(&self) {
        let g = self.slot.lock().expect("slot");
        let g = self.ready.wait(g).expect("wait");
        drop(g);
    }
    fn wait_properly(&self) {
        let mut g = self.slot.lock().expect("slot");
        while g.is_none() {
            g = self.ready.wait(g).expect("wait");
        }
    }
}
"#;

fn run_self_test() -> ExitCode {
    let files = vec![
        (
            "selftest/inversion.rs".to_string(),
            CORPUS_INVERSION.to_string(),
        ),
        (
            "selftest/interproc.rs".to_string(),
            CORPUS_INTERPROC.to_string(),
        ),
        (
            "selftest/blocking.rs".to_string(),
            CORPUS_BLOCKING.to_string(),
        ),
        (
            "selftest/naked_wait.rs".to_string(),
            CORPUS_NAKED_WAIT.to_string(),
        ),
    ];
    let findings = analyze_sources(&files);
    for f in &findings {
        println!("{f}");
    }
    // (rule, file, expected count)
    let expected: &[(&str, &str, usize)] = &[
        ("lock-order", "selftest/inversion.rs", 1),
        ("lock-order", "selftest/interproc.rs", 1),
        ("blocking-under-lock", "selftest/blocking.rs", 2),
        ("condvar-wait-loop", "selftest/naked_wait.rs", 1),
    ];
    let mut ok = true;
    for (rule, file, want) in expected {
        let got = findings
            .iter()
            .filter(|f| f.rule == *rule && f.file == *file)
            .count();
        if got != *want {
            eprintln!("concheck self-test: expected {want} {rule} finding(s) in {file}, got {got}");
            ok = false;
        }
    }
    let total_expected: usize = expected.iter().map(|(_, _, n)| n).sum();
    if findings.len() != total_expected {
        eprintln!(
            "concheck self-test: expected {total_expected} findings total, got {}",
            findings.len()
        );
        ok = false;
    }
    if ok {
        println!(
            "concheck self-test: all {} seeded defects flagged",
            total_expected
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_one(src: &str) -> Vec<ConFinding> {
        analyze_sources(&[("crates/x/src/lib.rs".to_string(), src.to_string())])
    }

    #[test]
    fn self_test_corpus_is_fully_flagged() {
        assert_eq!(run_self_test(), ExitCode::SUCCESS);
    }

    #[test]
    fn bound_guard_lives_to_scope_end() {
        let src = r#"
            fn f(&self) {
                let g = self.state.lock().expect("s");
                self.file.sync_all().expect("io");
            }
        "#;
        let f = analyze_one(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "blocking-under-lock");
    }

    #[test]
    fn guard_released_by_drop_or_block_end() {
        let src = r#"
            fn f(&self) {
                let g = self.state.lock().expect("s");
                drop(g);
                self.file.sync_all().expect("io");
            }
            fn h(&self) {
                {
                    let g = self.state.lock().expect("s");
                }
                self.file.sync_all().expect("io");
            }
        "#;
        assert!(analyze_one(src).is_empty());
    }

    #[test]
    fn temp_guard_dies_at_statement_end() {
        let src = r#"
            fn f(&self) {
                self.state.lock().expect("s").touch();
                self.file.sync_all().expect("io");
            }
        "#;
        assert!(analyze_one(src).is_empty());
    }

    #[test]
    fn let_binding_a_value_extracted_under_a_temp_guard_is_not_a_guard() {
        // `cached` binds the cloned value; the guard dies at the `;`.
        let src = r#"
            fn f(&self) {
                let cached = self.entries.lock().expect("l").get(&key).cloned();
                let fresh = self.entries.lock().expect("l").insert(key, v);
            }
        "#;
        assert!(analyze_one(src).is_empty(), "no self-deadlock on re-lock");
    }

    #[test]
    fn match_scrutinee_guard_covers_the_arms() {
        let src = r#"
            fn f(&self) -> bool {
                match self.state.lock() {
                    Ok(g) => { self.file.sync_all().expect("io"); true }
                    Err(_) => false,
                }
            }
        "#;
        let f = analyze_one(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "blocking-under-lock");
    }

    #[test]
    fn wait_consumes_its_own_guard_only() {
        // The guard passed to wait() is not "held across" it; a second
        // guard is.
        let clean = r#"
            fn f(&self) {
                let mut g = self.slot.lock().expect("s");
                while g.is_none() {
                    g = self.ready.wait(g).expect("w");
                }
            }
        "#;
        assert!(analyze_one(clean).is_empty());
        let dirty = r#"
            fn f(&self) {
                let other = self.index.lock().expect("i");
                let mut g = self.slot.lock().expect("s");
                while g.is_none() {
                    g = self.ready.wait(g).expect("w");
                }
            }
        "#;
        let f = analyze_one(dirty);
        assert!(
            f.iter()
                .any(|x| x.rule == "blocking-under-lock" && x.message.contains("self.index")),
            "{f:?}"
        );
    }

    #[test]
    fn child_wait_without_guard_arg_is_not_condvar_wait() {
        let src = r#"
            fn f(child: &mut Child) {
                let status = child.wait().expect("child");
            }
        "#;
        assert!(analyze_one(src).is_empty());
    }

    #[test]
    fn interprocedural_blocking_carries_a_reason_chain() {
        let src = r#"
            fn persist_record(&self, rec: &Rec) {
                self.log.write_all(rec.bytes()).expect("io");
            }
            fn f(&self) {
                let g = self.state.lock().expect("s");
                self.persist_record(&g.rec);
            }
        "#;
        let f = analyze_one(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("persist_record → write_all"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn inline_waiver_suppresses_concheck_findings() {
        let src = r#"
            fn f(&self) {
                let g = self.state.lock().expect("s");
                self.file.sync_all().expect("io"); // lint: allow(blocking-under-lock)
            }
        "#;
        assert!(analyze_one(src).is_empty());
    }

    #[test]
    fn allowlist_matches_file_and_function_scopes() {
        let finding = ConFinding {
            rule: "blocking-under-lock",
            file: "crates/serve/src/lib.rs".to_string(),
            function: "publish".to_string(),
            line: 10,
            message: String::new(),
        };
        let (left, unused) = apply_allowlist(
            vec![finding.clone()],
            &["blocking-under-lock crates/serve/src/lib.rs:publish".to_string()],
        );
        assert!(left.is_empty() && unused.is_empty());
        let (left, unused) = apply_allowlist(
            vec![finding.clone()],
            &["blocking-under-lock crates/serve/src/lib.rs".to_string()],
        );
        assert!(left.is_empty() && unused.is_empty());
        let (left, unused) = apply_allowlist(
            vec![finding],
            &["lock-order crates/serve/src/lib.rs".to_string()],
        );
        assert_eq!(left.len(), 1);
        assert_eq!(unused.len(), 1, "wrong rule never matches");
    }

    #[test]
    fn test_regions_are_excluded() {
        let src = r#"
            fn lib(&self) {}
            #[cfg(test)]
            mod tests {
                fn t(&self) {
                    let g = self.state.lock().expect("s");
                    self.file.sync_all().expect("io");
                }
            }
        "#;
        assert!(analyze_one(src).is_empty());
    }

    #[test]
    fn nested_fn_bodies_are_not_attributed_to_the_outer_fn() {
        let src = r#"
            fn outer(&self) {
                let g = self.state.lock().expect("s");
                fn inner(file: &File) {
                    file.sync_all().expect("io");
                }
                drop(g);
            }
        "#;
        // inner's sync_all runs with no lock held (the outer guard is not
        // in inner's scope), and outer never calls inner here.
        assert!(analyze_one(src).is_empty());
    }
}
