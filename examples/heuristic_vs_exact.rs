//! Heuristic vs exact synthesis — the trade-off that motivates the paper.
//!
//! The transformation-based heuristic (Miller/Maslov/Dueck, the paper's
//! reference \[13\]) is instant at any size but has no minimality guarantee;
//! the exact quantified synthesis proves minimality but is exponential.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example heuristic_vs_exact
//! ```

use qsyn::revlogic::{benchmarks, cost, GateLibrary};
use qsyn::synth::transform::transformation_synthesis;
use qsyn::synth::{synthesize, Engine, SynthesisOptions};
use std::time::Instant;

fn main() {
    println!(
        "{:<12} {:>10} {:>8} | {:>8} {:>8} {:>12} | {:>6}",
        "BENCH", "heur D", "heur QC", "exact D", "exact QC", "exact time", "gap"
    );
    for name in ["3_17", "mod5d1", "mod5mils", "hwb4"] {
        let bench = benchmarks::by_name(name).expect("known benchmark");
        let perm = bench.spec.as_permutation().expect("complete");
        let heuristic = transformation_synthesis(&perm);
        assert!(bench.spec.is_realized_by(&heuristic));
        let heur_qc = cost::circuit_cost(&heuristic);

        // Exact only where it is quick; hwb4 takes minutes, so cap it.
        let t = Instant::now();
        let exact = synthesize(
            &bench.spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd)
                .with_time_budget(std::time::Duration::from_secs(20)),
        );
        match exact {
            Ok(r) => {
                let (lo, _) = r.solutions().quantum_cost_range();
                println!(
                    "{:<12} {:>10} {:>8} | {:>8} {:>8} {:>12?} | {:>5.1}x",
                    name,
                    heuristic.len(),
                    heur_qc,
                    r.depth(),
                    lo,
                    t.elapsed(),
                    heuristic.len() as f64 / f64::from(r.depth().max(1))
                );
            }
            Err(_) => println!(
                "{:<12} {:>10} {:>8} | {:>8} {:>8} {:>12} |",
                name,
                heuristic.len(),
                heur_qc,
                "->20s",
                "-",
                "(budget)"
            ),
        }
    }
    println!();
    println!("The heuristic's answers are valid circuits but 2-5x larger than the");
    println!("proven minimum — the quality gap exact synthesis closes, at a price.");

    // And beyond exact reach: the heuristic still works at 8 lines.
    let big = benchmarks::random_permutation(8, 7);
    let t = Instant::now();
    let c = transformation_synthesis(&big);
    println!(
        "\n8-line random permutation: heuristic gives {} gates in {:?} (exact synthesis is infeasible here)",
        c.len(),
        t.elapsed()
    );
}
