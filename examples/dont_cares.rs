//! Synthesizing an *incompletely specified* function: embedding an
//! irreversible function (a 1-bit full adder) into a reversible circuit
//! with constant inputs and garbage outputs, then letting the don't-cares
//! shrink the minimal network (Section 4.2 of the paper).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dont_cares
//! ```

use qsyn::revlogic::embedding::Embedding;
use qsyn::revlogic::{spec_format, GateLibrary};
use qsyn::synth::{synthesize, Engine, SynthesisOptions};

fn main() {
    // A full adder: inputs a, b, cin; outputs sum, cout. Irreversible
    // (3 inputs, 2 outputs), so we embed it on 4 lines with one constant-0
    // ancilla. Lines 1-3 carry a, b, cin; the sum lands on line 3 and the
    // carry on line 4; lines 1-2 become garbage.
    let spec = Embedding {
        lines: 4,
        input_lines: vec![0, 1, 2],
        constants: vec![(3, false)],
        output_lines: vec![2, 3], // sum on line 3 (index 2), cout on line 4
    }
    .embed(|args| {
        let a = args & 1;
        let b = (args >> 1) & 1;
        let cin = (args >> 2) & 1;
        let total = a + b + cin;
        (total & 1) | ((total >> 1) << 1)
    })
    .expect("full adder embedding is realizable");

    println!("embedded specification ('-' marks don't-cares):");
    print!("{spec}");
    println!(
        "care ratio: {:.1}% of output bits are specified",
        spec.care_ratio() * 100.0
    );

    let result = synthesize(
        &spec,
        &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
    )
    .expect("full adder synthesizes");
    println!(
        "\nminimal Toffoli network: {} gates, {} minimal solutions",
        result.depth(),
        result.solutions().count()
    );
    let best = result.solutions().best_by_quantum_cost();
    println!("cheapest by quantum cost:\n{best}");
    assert!(spec.is_realized_by(best));

    // The spec (including its don't-cares) round-trips through the RevLib
    // style .spec format.
    let text = spec_format::write_spec(&spec);
    let reparsed = spec_format::parse_spec(&text).expect("own output parses");
    assert!(reparsed.is_realized_by(best));
    println!("round-tripped the specification through the .spec format ✓");
}
