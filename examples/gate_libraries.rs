//! Extended gate libraries (the paper's Table 3 workflow): synthesizing the
//! same function with MCT, MCT+MCF, MCT+P and MCT+MCF+P and comparing gate
//! counts and quantum costs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example gate_libraries
//! ```

use qsyn::revlogic::{benchmarks, GateLibrary};
use qsyn::synth::{synthesize, Engine, SynthesisOptions};

fn main() {
    let benches = ["3_17", "rd32-v1", "decod24-v1"];
    let libraries = [
        GateLibrary::mct(),
        GateLibrary::mct_mcf(),
        GateLibrary::mct_peres(),
        GateLibrary::all(),
    ];

    println!(
        "{:<12} {:<12} {:>3} {:>8} {:>10}",
        "BENCH", "LIBRARY", "D", "#SOL", "QC(min..max)"
    );
    for name in benches {
        let bench = benchmarks::by_name(name).expect("known benchmark");
        for lib in libraries {
            let options = SynthesisOptions::new(lib, Engine::Bdd).with_max_solutions(50_000);
            match synthesize(&bench.spec, &options) {
                Ok(r) => {
                    let (lo, hi) = r.solutions().quantum_cost_range();
                    println!(
                        "{:<12} {:<12} {:>3} {:>8} {:>6}..{}",
                        name,
                        lib.label(),
                        r.depth(),
                        r.solutions().count(),
                        lo,
                        hi
                    );
                }
                Err(e) => println!("{name:<12} {:<12} failed: {e}", lib.label()),
            }
        }
        println!();
    }
    println!("Richer libraries never increase the minimal gate count, and the");
    println!("Peres gate often lowers the achievable quantum cost (it packs a");
    println!("Toffoli+CNOT pair into cost 4 instead of 6).");
}
