//! All-minimal-networks enumeration and quantum-cost selection — the
//! paper's Table 2 workflow. Previous exact approaches return a single
//! minimal circuit; the BDD formulation yields *all* of them in one sweep,
//! so the cheapest mapping to elementary quantum gates can be picked.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example all_solutions
//! ```

use qsyn::revlogic::{benchmarks, cost, GateLibrary};
use qsyn::synth::{synthesize, Engine, SynthesisOptions};
use std::collections::BTreeMap;

fn main() {
    let bench = benchmarks::by_name("decod24-v0").expect("known benchmark");
    let result = synthesize(
        &bench.spec,
        &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_max_solutions(100_000),
    )
    .expect("decod24-v0 synthesizes");

    println!(
        "{}: {} gates minimal, {} minimal networks (exhaustive: {})",
        bench.name,
        result.depth(),
        result.solutions().count(),
        result.solutions().is_exhaustive()
    );

    // Histogram of quantum costs across ALL minimal networks.
    let mut histogram: BTreeMap<u64, usize> = BTreeMap::new();
    for c in result.solutions().circuits() {
        *histogram.entry(cost::circuit_cost(c)).or_insert(0) += 1;
    }
    println!("\nquantum-cost distribution over the minimal networks:");
    for (qc, count) in &histogram {
        println!(
            "  QC {qc:>3}: {count:>6} circuits  {}",
            "#".repeat((*count).min(60))
        );
    }

    let (best_qc, worst_qc) = result.solutions().quantum_cost_range();
    println!(
        "\npicking the best realization saves {} elementary gates over the worst ({} vs {})",
        worst_qc - best_qc,
        best_qc,
        worst_qc
    );
    let best = result.solutions().best_by_quantum_cost();
    println!("\nbest circuit:\n{best}");
    assert!(bench.spec.is_realized_by(best));
}
