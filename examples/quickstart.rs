//! Quickstart: exact synthesis of a 3-line benchmark with the BDD engine.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qsyn::revlogic::{benchmarks, cost, real, GateLibrary};
use qsyn::synth::{synthesize, Engine, SynthesisOptions};

fn main() {
    // The classic 3_17 benchmark: the "hardest" 3-variable reversible
    // function, known to need exactly six Toffoli gates.
    let spec = benchmarks::spec_3_17();
    println!(
        "specification (truth table):\n{}",
        spec.as_permutation().unwrap()
    );

    let options = SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd);
    let result = synthesize(&spec, &options).expect("3_17 is synthesizable");

    println!(
        "minimal gate count: {} (proved over depths 0..{})",
        result.depth(),
        result.depth()
    );
    println!(
        "all minimal networks: {} (found in one BDD sweep)",
        result.solutions().count()
    );

    // The BDD engine returns every minimal network; pick the cheapest
    // in elementary quantum gates.
    let best = result.solutions().best_by_quantum_cost();
    let (min_qc, max_qc) = result.solutions().quantum_cost_range();
    println!("quantum costs across solutions: {min_qc}..{max_qc}");
    println!(
        "\ncheapest realization (quantum cost {}):",
        cost::circuit_cost(best)
    );
    print!("{}", real::write_real(best));

    // Sanity: the circuit really computes the spec.
    assert!(spec.is_realized_by(best));
    println!("\nverified: circuit matches the specification on all 8 rows");
}
