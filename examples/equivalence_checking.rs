//! Equivalence checking of reversible circuits — a companion application
//! of the same machinery (BDDs and SAT) the synthesis engines run on.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example equivalence_checking
//! ```

use qsyn::revlogic::{benchmarks, cost, GateLibrary};
use qsyn::synth::equivalence::{counterexample_sat, equivalent_bdd};
use qsyn::synth::{synthesize, Engine, SynthesisOptions};

fn main() {
    // Synthesize 3_17 and check that all minimal networks are equivalent
    // to each other (they realize the same function by construction, so
    // this cross-checks synthesizer, BDD checker and SAT checker at once).
    let bench = benchmarks::by_name("3_17").expect("known benchmark");
    let result = synthesize(
        &bench.spec,
        &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
    )
    .expect("3_17 synthesizes");
    let circuits = result.solutions().circuits();
    println!(
        "3_17: {} minimal networks of {} gates each",
        circuits.len(),
        result.depth()
    );

    let reference = &circuits[0];
    for (i, c) in circuits.iter().enumerate().skip(1) {
        assert!(equivalent_bdd(reference, c), "BDD check failed for #{i}");
        assert!(
            counterexample_sat(reference, c).is_none(),
            "SAT check failed for #{i}"
        );
    }
    println!("all pairs equivalent by BDD canonicity and by SAT miter ✓");

    // Now a negative case: drop the last gate of the reference.
    let mut broken = qsyn::revlogic::Circuit::new(reference.lines());
    for g in &reference.gates()[..reference.len() - 1] {
        broken.push(*g);
    }
    println!(
        "\ndropping the last gate (quantum cost {} -> {}):",
        cost::circuit_cost(reference),
        cost::circuit_cost(&broken)
    );
    assert!(!equivalent_bdd(reference, &broken));
    let cex = counterexample_sat(reference, &broken).expect("must differ");
    println!(
        "SAT miter counterexample: input {:03b} -> {:03b} (full) vs {:03b} (broken)",
        cex,
        reference.simulate(cex),
        broken.simulate(cex)
    );
}
