//! The expandability extensions beyond the DATE 2008 paper: mixed-polarity
//! Toffoli gates and synthesis with output permutation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example extensions
//! ```

use qsyn::revlogic::{GateLibrary, Permutation, Spec};
use qsyn::synth::permuted::synthesize_with_output_permutation;
use qsyn::synth::{synthesize, Engine, SynthesisOptions};

fn main() {
    // --- Mixed-polarity (negative-control) Toffoli gates -----------------
    // f flips x2 exactly when x1 = 0: one negative-control CNOT, but two
    // positive-control gates.
    let f = Spec::from_permutation(&Permutation::from_fn(
        2,
        |v| {
            if v & 1 == 0 {
                v ^ 2
            } else {
                v
            }
        },
    ));
    let plain = synthesize(&f, &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd))
        .expect("synthesizes");
    let mixed = synthesize(
        &f,
        &SynthesisOptions::new(GateLibrary::mct().with_mixed_polarity(), Engine::Bdd),
    )
    .expect("synthesizes");
    println!(
        "mixed polarity: {} gates (MCT) vs {} gates (MPMCT)",
        plain.depth(),
        mixed.depth()
    );
    println!("MPMCT realization:\n{}", mixed.solutions().circuits()[0]);

    // The library sizes show the cost: n·2^(n-1) vs n·3^(n-1) gates.
    for n in 2..=5 {
        println!(
            "  n={n}: |G| = {:>4} (MCT)  vs {:>4} (MPMCT)",
            GateLibrary::mct().gate_count(n),
            GateLibrary::mct().with_mixed_polarity().gate_count(n)
        );
    }

    // --- Output permutation ----------------------------------------------
    // A SWAP costs three CNOTs — or zero gates if the synthesizer may
    // relabel the output lines.
    let swap = Spec::from_permutation(&Permutation::from_fn(2, |v| ((v & 1) << 1) | (v >> 1)));
    let fixed = synthesize(
        &swap,
        &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
    )
    .expect("synthesizes");
    let free = synthesize_with_output_permutation(
        &swap,
        &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
    )
    .expect("synthesizes");
    println!(
        "\noutput permutation: SWAP needs {} gates with fixed outputs,",
        fixed.depth()
    );
    println!(
        "but {} gates when output line {} is read as output {} (permutation {:?})",
        free.result.depth(),
        free.permutation[0] + 1,
        1,
        free.permutation
    );
}
