//! The three decision engines side by side (the paper's Table 1 contrast):
//! row-wise SAT baseline \[9\], QBF-solver formulation (Section 5.1) and the
//! BDD implementation of the quantified formulation (Section 5.2).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example engines
//! ```

use qsyn::revlogic::{benchmarks, GateLibrary};
use qsyn::synth::{synthesize, Engine, SynthesisOptions};
use std::time::Instant;

fn main() {
    let benches = ["3_17", "rd32-v0", "decod24-v0"];
    println!(
        "{:<12} {:<6} {:>3} {:>8} {:>12}",
        "BENCH", "ENGINE", "D", "#SOL", "TIME"
    );
    for name in benches {
        let bench = benchmarks::by_name(name).expect("known benchmark");
        for engine in [Engine::Sat, Engine::Qbf, Engine::Bdd] {
            let options = SynthesisOptions::new(GateLibrary::mct(), engine);
            let t = Instant::now();
            match synthesize(&bench.spec, &options) {
                Ok(r) => {
                    println!(
                        "{:<12} {:<6} {:>3} {:>8} {:>12?}",
                        name,
                        engine.to_string(),
                        r.depth(),
                        r.solutions().count(),
                        t.elapsed()
                    );
                    assert!(bench.spec.is_realized_by(&r.solutions().circuits()[0]));
                }
                Err(e) => println!("{name:<12} {engine:<6} failed: {e}"),
            }
        }
        println!();
    }
    println!("The engines agree on the minimal gate count D. Only the BDD");
    println!("engine reports more than one solution: it finds all minimal");
    println!("networks in a single quantified sweep.");
}
